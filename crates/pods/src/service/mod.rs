//! The job-service subsystem: bounded admission, backpressure, per-client
//! fairness, deadlines, and aggregate metrics for pooled runtimes.
//!
//! This layer sits between the public [`crate::Runtime`] API and the pooled
//! backends (the native thread pool and the async cooperative executor).
//! Job arrival is treated as an unbounded stream, not a batch: submissions
//! are admitted into a bounded queue ([`crate::PodsError::QueueFull`] /
//! blocking backpressure at capacity), a dispatcher thread drains the queue
//! into the pool deficit-round-robin across clients (so one client's burst
//! cannot starve the rest), a deadline watchdog cancels jobs that outlive
//! `RunOptions::deadline`, and every transition feeds the
//! [`ServiceMetrics`] snapshot.
//!
//! # Anatomy
//!
//! * [`fairness`] — [`ClientId`], client weights, and the deficit-round-
//!   robin [`fairness::FairQueue`].
//! * [`queue`] — the per-job [`queue::Ticket`] state machine (queued →
//!   dispatched/cancelled) that `JobHandle` waits on.
//! * [`metrics`] — the atomic [`metrics::MetricsRegistry`] and the public
//!   [`ServiceMetrics`] snapshot.
//! * This module — [`JobService`]: the dispatcher thread, the admission
//!   paths, cancellation, and shutdown.
//!
//! # Concurrency notes
//!
//! The service state lock nests *outside* pool and ticket locks: the
//! dispatcher submits to the pool and transitions tickets while holding it.
//! Completion hooks (fired by pool workers with no pool locks held) take
//! metrics locks and then the state lock. Cancellation of an in-flight job
//! re-enters the completion hook, so cancellers are always invoked with the
//! state lock released.

pub(crate) mod fairness;
pub(crate) mod metrics;
pub(crate) mod queue;

pub use fairness::ClientId;
pub use metrics::ServiceMetrics;

use crate::engine::{
    cancellation_error, AsyncCanceller, AsyncJobHandle, EngineOutcome, NativeCanceller,
    NativeJobHandle,
};
use crate::error::PodsError;
use crate::pipeline::RunOptions;
use crate::runtime::Backend;
use crate::trace::{TraceEventKind, TraceHandle, TraceRecorder};
use fairness::FairQueue;
use metrics::MetricsRegistry;
use pods_istructure::{StoreStats, Value};
use pods_machine::SimulationError;
use queue::{CancelKind, QueuedJob, Ticket};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread;
use std::time::Instant;

/// The error injected into a pool job stopped by `JobHandle::cancel`.
fn user_cancel_error() -> SimulationError {
    SimulationError::Runtime("job cancelled: JobHandle::cancel was called".into())
}

/// The error injected into a pool job stopped by the deadline watchdog
/// (mapped to [`PodsError::DeadlineExceeded`] at `wait`).
fn deadline_cancel_error() -> SimulationError {
    SimulationError::Runtime("job cancelled: deadline exceeded".into())
}

/// A job in flight on either pooled backend.
pub(crate) enum PoolHandle {
    Native(NativeJobHandle),
    Async(AsyncJobHandle),
}

impl PoolHandle {
    pub(crate) fn is_done(&self) -> bool {
        match self {
            PoolHandle::Native(h) => h.is_done(),
            PoolHandle::Async(h) => h.is_done(),
        }
    }

    pub(crate) fn canceller(&self) -> PoolCanceller {
        match self {
            PoolHandle::Native(h) => PoolCanceller::Native(h.canceller()),
            PoolHandle::Async(h) => PoolCanceller::Async(h.canceller()),
        }
    }

    pub(crate) fn wait(self) -> Result<EngineOutcome, PodsError> {
        match self {
            PoolHandle::Native(h) => h.wait(),
            PoolHandle::Async(h) => h.wait(),
        }
    }
}

/// A detachable cancel token for a job on either pooled backend.
#[derive(Clone)]
pub(crate) enum PoolCanceller {
    Native(NativeCanceller),
    Async(AsyncCanceller),
}

impl PoolCanceller {
    fn is_done(&self) -> bool {
        match self {
            PoolCanceller::Native(c) => c.is_done(),
            PoolCanceller::Async(c) => c.is_done(),
        }
    }

    fn cancel(&self, err: SimulationError) {
        match self {
            PoolCanceller::Native(c) => c.cancel(err),
            PoolCanceller::Async(c) => c.cancel(err),
        }
    }
}

/// How a submission behaves when the admission queue is full.
pub(crate) enum Admission {
    /// `submit`: block until a slot frees (unbounded wait).
    Wait,
    /// `try_submit`: reject immediately with `QueueFull`.
    Try,
    /// `submit_timeout`: block until the given instant, then reject.
    Until(Instant),
}

/// A job dispatched to the pool and not yet finished.
struct InFlight {
    ticket: Arc<Ticket>,
    canceller: PoolCanceller,
}

/// State guarded by the service lock.
struct ServiceState {
    queue: FairQueue,
    in_flight: Vec<InFlight>,
    shutdown: bool,
}

/// The shared core of the service (see module docs).
pub(crate) struct ServiceInner {
    /// The pooled backend, held weakly: the `Runtime` owns the strong
    /// reference, so dropping the runtime tears the pool down even while
    /// completion hooks (which hold `Arc<ServiceInner>`) are alive.
    backend: Weak<Backend>,
    opts: RunOptions,
    /// Admission queue capacity (0 = unbounded).
    capacity: usize,
    /// Maximum jobs dispatched to the pool at once.
    window: usize,
    state: Mutex<ServiceState>,
    /// Wakes the dispatcher: new work, a freed pool slot, or shutdown.
    work_cv: Condvar,
    /// Wakes submitters blocked on a full admission queue.
    slot_cv: Condvar,
    pub(crate) metrics: Arc<MetricsRegistry>,
    /// The runtime's flight recorder, when tracing is enabled. Job-lifecycle
    /// events land on the recorder's service lane; per-job handles travel to
    /// the pool inside the job spec.
    pub(crate) trace: Option<Arc<TraceRecorder>>,
}

impl ServiceInner {
    /// Records one job-lifecycle event on the service lane. A no-op when
    /// tracing is disabled (`job` 0 means the ticket predates the recorder).
    fn trace_job_event(&self, job: u64, kind: TraceEventKind) {
        if job == 0 {
            return;
        }
        if let Some(rec) = &self.trace {
            rec.emit(rec.service_lane(), job, 0, kind);
        }
    }

    /// Admits one job under the given admission mode. Returns its ticket,
    /// or `QueueFull` if the job was rejected (already counted).
    pub(crate) fn submit(
        self: &Arc<Self>,
        client: ClientId,
        prepared: crate::runtime::PreparedProgram,
        args: Vec<Value>,
        mode: Admission,
    ) -> Result<Arc<Ticket>, PodsError> {
        self.metrics.note_submitted();
        let trace_job = self.trace.as_ref().map_or(0, |rec| rec.next_job_id());
        let ticket = Arc::new(Ticket::new(client, self.opts.deadline, trace_job));
        self.trace_job_event(trace_job, TraceEventKind::JobAdmitted);
        let mut job = Some(QueuedJob {
            ticket: Arc::clone(&ticket),
            prepared,
            args,
        });
        let mut st = self.state.lock().expect("service state poisoned");
        loop {
            if st.shutdown {
                // Unreachable through the public API (shutdown needs `&mut
                // Runtime`), but terminal rather than hanging if reached.
                ticket.set_cancel_kind(CancelKind::Shutdown);
                ticket.cancelled(cancellation_error().into());
                self.metrics.note_cancelled();
                return Ok(ticket);
            }
            if st.queue.is_empty() && st.in_flight.len() < self.window {
                // Fast path: an idle slot and no queue to be fair against —
                // dispatch inline, keeping the warm path at pool-submit cost.
                let qj = job.take().expect("job admitted twice");
                self.dispatch_locked(&mut st, qj);
                drop(st);
                if self.opts.deadline.is_some() {
                    // Re-arm the dispatcher's deadline watchdog.
                    self.work_cv.notify_all();
                }
                return Ok(ticket);
            }
            if self.capacity == 0 || st.queue.len() < self.capacity {
                let qj = job.take().expect("job admitted twice");
                st.queue.push(qj);
                self.metrics.set_depth(st.queue.len());
                drop(st);
                self.work_cv.notify_all();
                return Ok(ticket);
            }
            let depth = st.queue.len();
            match mode {
                Admission::Try => {
                    self.metrics.note_rejected();
                    return Err(PodsError::QueueFull {
                        capacity: self.capacity,
                        depth,
                    });
                }
                Admission::Wait => {
                    st = self.slot_cv.wait(st).expect("service state poisoned");
                }
                Admission::Until(limit) => {
                    let now = Instant::now();
                    if now >= limit {
                        self.metrics.note_rejected();
                        return Err(PodsError::QueueFull {
                            capacity: self.capacity,
                            depth,
                        });
                    }
                    st = self
                        .slot_cv
                        .wait_timeout(st, limit - now)
                        .expect("service state poisoned")
                        .0;
                }
            }
        }
    }

    /// Submits one queued job to the pool. Caller holds the state lock.
    fn dispatch_locked(self: &Arc<Self>, st: &mut ServiceState, qj: QueuedJob) {
        let QueuedJob {
            ticket,
            prepared,
            args,
        } = qj;
        let Some(backend) = self.backend.upgrade() else {
            // The runtime is tearing down; terminal, like shutdown.
            ticket.set_cancel_kind(CancelKind::Shutdown);
            ticket.cancelled(cancellation_error().into());
            self.metrics.note_cancelled();
            return;
        };
        let mut spec = prepared.job_spec(&self.opts);
        let hook_self = Arc::clone(self);
        let hook_ticket = Arc::clone(&ticket);
        spec.on_done = Some(Arc::new(move |store: StoreStats| {
            hook_self.job_finished(&hook_ticket, store);
        }));
        if let Some(rec) = &self.trace {
            if ticket.trace_job != 0 {
                spec.trace = Some(TraceHandle {
                    rec: Arc::clone(rec),
                    job: ticket.trace_job,
                });
                self.trace_job_event(ticket.trace_job, TraceEventKind::JobDispatched);
            }
        }
        let handle = backend.submit_pooled(spec, &args);
        let canceller = handle.canceller();
        ticket.dispatched(handle);
        st.in_flight.push(InFlight { ticket, canceller });
        self.metrics.set_in_flight(st.in_flight.len());
    }

    /// Completion hook: runs on a pool worker thread, exactly once per
    /// dispatched job, with no pool locks held.
    fn job_finished(&self, ticket: &Arc<Ticket>, store: StoreStats) {
        match ticket.cancel_kind() {
            Some(_) => self.metrics.note_cancelled(),
            None => {
                self.trace_job_event(ticket.trace_job, TraceEventKind::JobFinished);
                self.metrics
                    .note_completed(ticket.client, ticket.submitted.elapsed());
            }
        }
        self.metrics.absorb_store(store);
        let mut st = self.state.lock().expect("service state poisoned");
        st.in_flight.retain(|e| !Arc::ptr_eq(&e.ticket, ticket));
        self.metrics.set_in_flight(st.in_flight.len());
        drop(st);
        self.work_cv.notify_all();
    }

    /// `JobHandle::cancel`: cancels a queued job outright, or stops a
    /// dispatched one at its next instruction boundary. A no-op for jobs
    /// that already finished.
    pub(crate) fn cancel(&self, ticket: &Arc<Ticket>) {
        let mut st = self.state.lock().expect("service state poisoned");
        let removed = st.queue.purge(|qj| Arc::ptr_eq(&qj.ticket, ticket));
        if !removed.is_empty() {
            ticket.set_cancel_kind(CancelKind::User);
            ticket.cancelled(user_cancel_error().into());
            self.trace_job_event(ticket.trace_job, TraceEventKind::JobCancelled);
            self.metrics.note_cancelled();
            self.metrics.set_depth(st.queue.len());
            drop(st);
            self.slot_cv.notify_all();
            return;
        }
        let canceller = st
            .in_flight
            .iter()
            .find(|e| Arc::ptr_eq(&e.ticket, ticket))
            .map(|e| e.canceller.clone());
        drop(st);
        if let Some(c) = canceller {
            if !c.is_done() {
                ticket.set_cancel_kind(CancelKind::User);
                self.trace_job_event(ticket.trace_job, TraceEventKind::JobCancelled);
                c.cancel(user_cancel_error());
            }
        }
    }

    /// Renders the flight-recorder breakdown for one job (for error
    /// messages); `None` when tracing is off or nothing was recorded.
    pub(crate) fn job_breakdown(&self, trace_job: u64) -> Option<String> {
        if trace_job == 0 {
            return None;
        }
        let rec = self.trace.as_ref()?;
        Some(rec.peek().breakdown(trace_job)?.to_string())
    }
}

/// The earlier of two optional instants (`Option::min` would treat `None`
/// as earliest).
fn earlier(a: Option<Instant>, b: Option<Instant>) -> Option<Instant> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// The dispatcher thread: drains the fair queue into the pool up to the
/// dispatch window and enforces deadlines. Sleeps on `work_cv` (bounded by
/// the earliest pending deadline) when there is nothing to do.
fn dispatcher_loop(inner: Arc<ServiceInner>) {
    let mut st = inner.state.lock().expect("service state poisoned");
    loop {
        if st.shutdown {
            return;
        }

        // Deadline watchdog: cancel expired queued jobs in place, collect
        // cancellers for expired in-flight jobs, and find the next wake-up.
        let mut next_deadline: Option<Instant> = None;
        let mut overdue: Vec<PoolCanceller> = Vec::new();
        if inner.opts.deadline.is_some() {
            let now = Instant::now();
            let expired = st
                .queue
                .purge(|qj| qj.ticket.deadline.is_some_and(|d| d <= now));
            if !expired.is_empty() {
                for qj in &expired {
                    qj.ticket.set_cancel_kind(CancelKind::Deadline);
                    inner.trace_job_event(qj.ticket.trace_job, TraceEventKind::JobDeadline);
                    qj.ticket.cancelled(PodsError::DeadlineExceeded {
                        deadline: qj.ticket.deadline_dur.unwrap_or_default(),
                        breakdown: inner.job_breakdown(qj.ticket.trace_job),
                    });
                    inner.metrics.note_cancelled();
                }
                inner.metrics.set_depth(st.queue.len());
                inner.slot_cv.notify_all();
            }
            for entry in &st.in_flight {
                match entry.ticket.deadline {
                    Some(d) if d <= now => {
                        if entry.ticket.cancel_kind().is_none() && !entry.canceller.is_done() {
                            entry.ticket.set_cancel_kind(CancelKind::Deadline);
                            inner.trace_job_event(
                                entry.ticket.trace_job,
                                TraceEventKind::JobDeadline,
                            );
                            overdue.push(entry.canceller.clone());
                        }
                    }
                    d => next_deadline = earlier(next_deadline, d),
                }
            }
            next_deadline = earlier(next_deadline, st.queue.min_deadline());
        }

        // Dispatch up to the window, deficit-round-robin across clients.
        let mut dispatched = false;
        while st.in_flight.len() < inner.window {
            match st.queue.pop() {
                Some(qj) => {
                    inner.dispatch_locked(&mut st, qj);
                    dispatched = true;
                }
                None => break,
            }
        }
        if dispatched {
            inner.metrics.set_depth(st.queue.len());
            inner.slot_cv.notify_all();
        }

        // Stop overdue jobs with the lock released: cancellation re-enters
        // the completion hook, which takes the state lock.
        if !overdue.is_empty() {
            drop(st);
            for c in overdue {
                c.cancel(deadline_cancel_error());
            }
            st = inner.state.lock().expect("service state poisoned");
            continue;
        }

        st = match next_deadline {
            Some(d) => {
                let now = Instant::now();
                if d <= now {
                    continue;
                }
                inner
                    .work_cv
                    .wait_timeout(st, d - now)
                    .expect("service state poisoned")
                    .0
            }
            None => inner.work_cv.wait(st).expect("service state poisoned"),
        };
    }
}

/// The service owned by a pooled [`crate::Runtime`]: shared state plus the
/// dispatcher thread.
pub(crate) struct JobService {
    pub(crate) inner: Arc<ServiceInner>,
    dispatcher: Option<thread::JoinHandle<()>>,
}

impl JobService {
    /// Spawns the dispatcher and returns the running service.
    pub(crate) fn start(
        backend: Weak<Backend>,
        opts: RunOptions,
        capacity: usize,
        window: usize,
        weights: HashMap<ClientId, u32>,
        metrics: Arc<MetricsRegistry>,
        trace: Option<Arc<TraceRecorder>>,
    ) -> JobService {
        let inner = Arc::new(ServiceInner {
            backend,
            opts,
            capacity,
            window: window.max(1),
            state: Mutex::new(ServiceState {
                queue: FairQueue::new(weights),
                in_flight: Vec::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            slot_cv: Condvar::new(),
            metrics,
            trace,
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("pods-dispatcher".into())
                .spawn(move || dispatcher_loop(inner))
                .expect("failed to spawn service dispatcher")
        };
        JobService {
            inner,
            dispatcher: Some(dispatcher),
        }
    }

    /// Clean drain-on-drop, called from `Runtime::drop` *before* the pool
    /// is dropped: cancels everything still queued (their waiters get a
    /// cancellation error, not a hang), pre-marks in-flight jobs as
    /// shutdown-cancelled (the pool's own drop stops them), and joins the
    /// dispatcher.
    pub(crate) fn shutdown(&mut self) {
        {
            let mut st = self.inner.state.lock().expect("service state poisoned");
            st.shutdown = true;
            let drained = st.queue.purge(|_| true);
            self.inner.metrics.set_depth(0);
            for qj in &drained {
                qj.ticket.set_cancel_kind(CancelKind::Shutdown);
                self.inner
                    .trace_job_event(qj.ticket.trace_job, TraceEventKind::JobCancelled);
                qj.ticket.cancelled(cancellation_error().into());
                self.inner.metrics.note_cancelled();
            }
            for entry in &st.in_flight {
                if !entry.canceller.is_done() {
                    entry.ticket.set_cancel_kind(CancelKind::Shutdown);
                }
            }
        }
        self.inner.work_cv.notify_all();
        self.inner.slot_cv.notify_all();
        if let Some(t) = self.dispatcher.take() {
            t.join().expect("service dispatcher panicked");
        }
    }
}
