//! Per-client fair scheduling: client identities, weights, and the
//! deficit-round-robin admission queue.
//!
//! Jobs are queued in per-client lanes. The dispatcher drains lanes in
//! round-robin order, serving up to `weight` jobs from a lane per visit
//! (deficit round robin with a credit of one job per weight unit), so a
//! burst from one client cannot starve the others and weights express
//! proportional priorities: a weight-2 client gets ~2x the dispatch rate of
//! a weight-1 client whenever both have jobs waiting.

use super::queue::QueuedJob;
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Identifies the submitting client of a job, for per-client fair
/// scheduling on a shared [`crate::Runtime`].
///
/// Client ids are caller-assigned opaque numbers: tag submissions with
/// `Runtime::submit_for` (and friends) and configure per-client weights
/// with `RuntimeBuilder::client_weight`. Submissions through the plain
/// `submit`/`try_submit`/`submit_timeout` methods are attributed to
/// [`ClientId::ANONYMOUS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientId(pub u64);

impl ClientId {
    /// The client that jobs submitted without an explicit id are
    /// attributed to.
    pub const ANONYMOUS: ClientId = ClientId(0);
}

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// One client's backlog of admitted-but-not-yet-dispatched jobs.
struct Lane {
    client: ClientId,
    jobs: VecDeque<QueuedJob>,
}

/// The admission queue: per-client lanes drained deficit-round-robin.
///
/// Lanes are created on first push from a client and removed when drained,
/// so an idle client costs nothing. The cursor/credit pair persists across
/// `pop` calls: the dispatcher may drain one job at a time and still serve
/// clients in weighted proportion.
pub(crate) struct FairQueue {
    lanes: Vec<Lane>,
    /// Configured jobs-per-visit weights; absent clients weigh 1.
    weights: HashMap<ClientId, u32>,
    /// Lane index currently being served.
    cursor: usize,
    /// Jobs the cursor lane may still dispatch in this visit.
    credit: u32,
    /// Total queued jobs across all lanes.
    len: usize,
}

impl FairQueue {
    pub(crate) fn new(weights: HashMap<ClientId, u32>) -> FairQueue {
        FairQueue {
            lanes: Vec::new(),
            weights,
            cursor: 0,
            credit: 0,
            len: 0,
        }
    }

    fn weight_of(&self, client: ClientId) -> u32 {
        self.weights.get(&client).copied().unwrap_or(1).max(1)
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a job to its client's lane (created on demand at the end of
    /// the round-robin order).
    pub(crate) fn push(&mut self, job: QueuedJob) {
        let client = job.ticket.client;
        match self.lanes.iter_mut().find(|l| l.client == client) {
            Some(lane) => lane.jobs.push_back(job),
            None => self.lanes.push(Lane {
                client,
                jobs: VecDeque::from([job]),
            }),
        }
        self.len += 1;
    }

    /// Pops the next job in deficit-round-robin order, or `None` when the
    /// queue is empty.
    pub(crate) fn pop(&mut self) -> Option<QueuedJob> {
        loop {
            if self.len == 0 {
                return None;
            }
            if self.cursor >= self.lanes.len() {
                self.cursor = 0;
            }
            if self.lanes[self.cursor].jobs.is_empty() {
                // A lane drained by `purge`: drop it without spending the
                // visit (the next lane shifts into the cursor slot).
                self.lanes.remove(self.cursor);
                self.credit = 0;
                continue;
            }
            if self.credit == 0 {
                self.credit = self.weight_of(self.lanes[self.cursor].client);
            }
            let job = self.lanes[self.cursor]
                .jobs
                .pop_front()
                .expect("lane emptiness checked above");
            self.len -= 1;
            self.credit -= 1;
            if self.lanes[self.cursor].jobs.is_empty() {
                self.lanes.remove(self.cursor);
                self.credit = 0;
            } else if self.credit == 0 {
                self.cursor += 1;
            }
            return Some(job);
        }
    }

    /// Removes and returns every queued job matching `pred` (cancellation
    /// and shutdown paths). Emptied lanes are cleaned up lazily by `pop`.
    pub(crate) fn purge<F: FnMut(&QueuedJob) -> bool>(&mut self, mut pred: F) -> Vec<QueuedJob> {
        let mut removed = Vec::new();
        for lane in &mut self.lanes {
            let mut kept = VecDeque::with_capacity(lane.jobs.len());
            for job in lane.jobs.drain(..) {
                if pred(&job) {
                    removed.push(job);
                } else {
                    kept.push_back(job);
                }
            }
            lane.jobs = kept;
        }
        self.len -= removed.len();
        removed
    }

    /// The earliest deadline among queued jobs (for the dispatcher's
    /// watchdog sleep).
    pub(crate) fn min_deadline(&self) -> Option<Instant> {
        self.lanes
            .iter()
            .flat_map(|l| l.jobs.iter())
            .filter_map(|j| j.ticket.deadline)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::super::queue::Ticket;
    use super::*;
    use std::sync::Arc;

    fn job(client: ClientId) -> QueuedJob {
        let program = crate::pipeline::compile("def main() { return 1; }").unwrap();
        let runtime = crate::Runtime::builder(crate::EngineKind::Seq).build();
        QueuedJob {
            ticket: Arc::new(Ticket::new(client, None, 0)),
            prepared: runtime.prepare(&program),
            args: Vec::new(),
        }
    }

    #[test]
    fn drr_serves_clients_in_weighted_proportion() {
        let a = ClientId(1);
        let b = ClientId(2);
        let mut q = FairQueue::new(HashMap::from([(a, 2), (b, 1)]));
        for _ in 0..6 {
            q.push(job(a));
        }
        for _ in 0..3 {
            q.push(job(b));
        }
        assert_eq!(q.len(), 9);
        let order: Vec<ClientId> = std::iter::from_fn(|| q.pop())
            .map(|j| j.ticket.client)
            .collect();
        assert_eq!(
            order,
            vec![a, a, b, a, a, b, a, a, b],
            "weight 2:1 must interleave two A per B"
        );
        assert!(q.is_empty());
    }

    #[test]
    fn unweighted_clients_alternate_evenly() {
        let a = ClientId(10);
        let b = ClientId(20);
        let mut q = FairQueue::new(HashMap::new());
        for _ in 0..3 {
            q.push(job(a));
            q.push(job(b));
        }
        let order: Vec<ClientId> = std::iter::from_fn(|| q.pop())
            .map(|j| j.ticket.client)
            .collect();
        assert_eq!(order, vec![a, b, a, b, a, b]);
    }

    #[test]
    fn purge_removes_matching_jobs_and_keeps_order() {
        let a = ClientId(1);
        let mut q = FairQueue::new(HashMap::new());
        let keep = job(a);
        let drop_me = job(a);
        let victim = Arc::clone(&drop_me.ticket);
        q.push(keep);
        q.push(drop_me);
        let removed = q.purge(|j| Arc::ptr_eq(&j.ticket, &victim));
        assert_eq!(removed.len(), 1);
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }
}
