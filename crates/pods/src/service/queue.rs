//! Admission tickets: the lifecycle of one submitted job from admission
//! through dispatch to completion or cancellation.
//!
//! A [`Ticket`] is the service-side identity of a job. It moves through
//! exactly one of two paths:
//!
//! * `Queued → Dispatched` — the dispatcher handed the job to the pool; the
//!   pool handle is parked inside the ticket for the (single) waiter to
//!   claim.
//! * `Queued → Cancelled` — the job was cancelled before dispatch (explicit
//!   cancel, deadline, or runtime shutdown) and carries the error its
//!   waiter receives.
//!
//! Cancellation *after* dispatch does not transition the ticket: the pool
//! job itself is stopped (via its canceller) and the waiter observes the
//! failure through the claimed pool handle, with [`Ticket::cancel_kind`]
//! recording why so the error can be mapped (e.g. to
//! [`PodsError::DeadlineExceeded`]).

use super::fairness::ClientId;
use super::PoolHandle;
use crate::error::PodsError;
use crate::runtime::PreparedProgram;
use pods_istructure::Value;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why the service cancelled a job. Recorded first-wins: a deadline and an
/// explicit cancel racing each other report whichever landed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CancelKind {
    /// The job outlived `RunOptions::deadline`.
    Deadline,
    /// `JobHandle::cancel` was called.
    User,
    /// The runtime was dropped while the job was still pending.
    Shutdown,
}

/// An admitted job waiting in the fair queue: its ticket plus everything
/// the dispatcher needs to submit it to the pool.
pub(crate) struct QueuedJob {
    pub(crate) ticket: Arc<Ticket>,
    pub(crate) prepared: PreparedProgram,
    pub(crate) args: Vec<Value>,
}

enum TicketState {
    /// Waiting in the admission queue.
    Queued,
    /// Handed to the pool. The handle is claimed (once) by the waiting
    /// `JobHandle::wait`; `None` after the claim.
    Dispatched { handle: Option<PoolHandle> },
    /// Cancelled before ever reaching the pool.
    Cancelled(PodsError),
}

/// The service-side state of one submitted job (see module docs).
pub(crate) struct Ticket {
    /// The client this job is attributed to.
    pub(crate) client: ClientId,
    /// When the job was admitted (the latency clock).
    pub(crate) submitted: Instant,
    /// Absolute deadline (`submitted + RunOptions::deadline`), if any.
    pub(crate) deadline: Option<Instant>,
    /// The configured deadline duration (for error reporting).
    pub(crate) deadline_dur: Option<Duration>,
    state: Mutex<TicketState>,
    /// Signalled on every state transition out of `Queued`.
    cv: Condvar,
    /// `CancelKind` as a first-wins atomic (0 = not cancelled).
    cancel_kind: AtomicU8,
    /// Flight-recorder job id (0 when tracing is disabled), used to tag
    /// lifecycle events and to look up the job's breakdown on wait.
    pub(crate) trace_job: u64,
}

impl Ticket {
    pub(crate) fn new(client: ClientId, deadline_dur: Option<Duration>, trace_job: u64) -> Ticket {
        let submitted = Instant::now();
        Ticket {
            client,
            submitted,
            deadline: deadline_dur.map(|d| submitted + d),
            deadline_dur,
            state: Mutex::new(TicketState::Queued),
            cv: Condvar::new(),
            cancel_kind: AtomicU8::new(0),
            trace_job,
        }
    }

    /// Records why the service cancelled this job. First call wins.
    pub(crate) fn set_cancel_kind(&self, kind: CancelKind) {
        let v = match kind {
            CancelKind::Deadline => 1,
            CancelKind::User => 2,
            CancelKind::Shutdown => 3,
        };
        let _ = self
            .cancel_kind
            .compare_exchange(0, v, Ordering::SeqCst, Ordering::SeqCst);
    }

    /// The recorded cancellation cause, if any.
    pub(crate) fn cancel_kind(&self) -> Option<CancelKind> {
        match self.cancel_kind.load(Ordering::SeqCst) {
            1 => Some(CancelKind::Deadline),
            2 => Some(CancelKind::User),
            3 => Some(CancelKind::Shutdown),
            _ => None,
        }
    }

    /// `Queued → Dispatched`. Called by the dispatcher under the service
    /// state lock, so it cannot race a pre-dispatch cancellation.
    pub(crate) fn dispatched(&self, handle: PoolHandle) {
        let mut st = self.state.lock().expect("ticket poisoned");
        debug_assert!(matches!(*st, TicketState::Queued));
        *st = TicketState::Dispatched {
            handle: Some(handle),
        };
        drop(st);
        self.cv.notify_all();
    }

    /// `Queued → Cancelled`. A no-op once dispatched (post-dispatch
    /// cancellation goes through the pool job's canceller instead).
    pub(crate) fn cancelled(&self, err: PodsError) {
        let mut st = self.state.lock().expect("ticket poisoned");
        if matches!(*st, TicketState::Queued) {
            *st = TicketState::Cancelled(err);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Blocks until the job leaves the queue, then yields the pool handle
    /// (exactly once) or the pre-dispatch cancellation error.
    pub(crate) fn claim(&self) -> Result<PoolHandle, PodsError> {
        let mut st = self.state.lock().expect("ticket poisoned");
        loop {
            match &mut *st {
                TicketState::Queued => st = self.cv.wait(st).expect("ticket poisoned"),
                TicketState::Dispatched { handle } => {
                    return Ok(handle.take().expect("pool handle already claimed"));
                }
                TicketState::Cancelled(err) => return Err(err.clone()),
            }
        }
    }

    /// Whether the job has reached a terminal state (`JobHandle::is_done`).
    pub(crate) fn is_done(&self) -> bool {
        match &*self.state.lock().expect("ticket poisoned") {
            TicketState::Queued => false,
            TicketState::Dispatched { handle: Some(h) } => h.is_done(),
            TicketState::Dispatched { handle: None } => true,
            TicketState::Cancelled(_) => true,
        }
    }
}
