//! Aggregate service metrics: relaxed-atomic counters, a fixed-bucket
//! latency histogram, and the public [`ServiceMetrics`] snapshot.
//!
//! Everything on the job hot path is a relaxed atomic increment; the only
//! lock is around the per-client completion map, taken once per completed
//! job (never per instruction). Latency is recorded into power-of-two
//! microsecond buckets, so percentiles cost no per-job allocation and no
//! sorted reservoir.

use super::fairness::ClientId;
use pods_istructure::StoreStats;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of histogram buckets: bucket `i` counts jobs whose latency in
/// microseconds lies in `[2^(i-1), 2^i)` (bucket 0 is sub-microsecond), so
/// 40 buckets span sub-µs to ~6 days.
const BUCKETS: usize = 40;

/// Fixed-bucket log2 latency histogram.
struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Sum of every recorded sample in µs (for the Prometheus `_sum`).
    sum_us: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }

    fn record(&self, us: u64) {
        let idx = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Cumulative `(upper_bound_us, count_at_or_below)` pairs, one per
    /// bucket (bucket `i`'s upper bound is `2^i` µs).
    fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut seen = 0u64;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                seen += b.load(Ordering::Relaxed);
                ((1u64 << i) as f64, seen)
            })
            .collect()
    }

    /// The upper bound (in µs) of the bucket containing the `q`-quantile
    /// sample, or 0 when nothing was recorded.
    fn percentile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << i) as f64;
            }
        }
        (1u64 << (BUCKETS - 1)) as f64
    }
}

/// The service's live counters. Shared (`Arc`) between the runtime, the
/// dispatcher, and every job's completion hook.
pub(crate) struct MetricsRegistry {
    started: Instant,
    capacity: usize,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
    depth: AtomicUsize,
    depth_peak: AtomicUsize,
    in_flight: AtomicUsize,
    latency: Histogram,
    peak_live_arrays: AtomicUsize,
    peak_array_bytes: AtomicUsize,
    arrays_allocated: AtomicU64,
    per_client: Mutex<HashMap<ClientId, u64>>,
}

impl MetricsRegistry {
    pub(crate) fn new(capacity: usize) -> MetricsRegistry {
        MetricsRegistry {
            started: Instant::now(),
            capacity,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            depth_peak: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            latency: Histogram::new(),
            peak_live_arrays: AtomicUsize::new(0),
            peak_array_bytes: AtomicUsize::new(0),
            arrays_allocated: AtomicU64::new(0),
            per_client: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn note_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_completed(&self, client: ClientId, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency
            .record(latency.as_micros().min(u64::MAX as u128) as u64);
        *self
            .per_client
            .lock()
            .expect("metrics poisoned")
            .entry(client)
            .or_insert(0) += 1;
    }

    pub(crate) fn set_depth(&self, depth: usize) {
        self.depth.store(depth, Ordering::Relaxed);
        self.depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    pub(crate) fn set_in_flight(&self, n: usize) {
        self.in_flight.store(n, Ordering::Relaxed);
    }

    /// Folds one finished job's I-structure store counters into the
    /// service-wide aggregates.
    pub(crate) fn absorb_store(&self, store: StoreStats) {
        self.peak_live_arrays
            .fetch_max(store.peak_arrays, Ordering::Relaxed);
        self.peak_array_bytes
            .fetch_max(store.peak_bytes, Ordering::Relaxed);
        self.arrays_allocated
            .fetch_add(store.peak_arrays as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ServiceMetrics {
        let mut completed_by_client: Vec<(ClientId, u64)> = self
            .per_client
            .lock()
            .expect("metrics poisoned")
            .iter()
            .map(|(c, n)| (*c, *n))
            .collect();
        completed_by_client.sort_unstable_by_key(|(c, _)| *c);
        let completed = self.completed.load(Ordering::Relaxed);
        let uptime = self.started.elapsed().as_secs_f64();
        ServiceMetrics {
            admission_capacity: self.capacity,
            queue_depth: self.depth.load(Ordering::Relaxed),
            queue_depth_peak: self.depth_peak.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            jobs_per_sec: if uptime > 0.0 {
                completed as f64 / uptime
            } else {
                0.0
            },
            p50_latency_us: self.latency.percentile(0.50),
            p99_latency_us: self.latency.percentile(0.99),
            latency_buckets: self.latency.cumulative(),
            latency_sum_us: self.latency.sum_us.load(Ordering::Relaxed),
            peak_live_arrays: self.peak_live_arrays.load(Ordering::Relaxed),
            peak_array_bytes: self.peak_array_bytes.load(Ordering::Relaxed),
            arrays_allocated: self.arrays_allocated.load(Ordering::Relaxed),
            completed_by_client,
        }
    }
}

/// A point-in-time snapshot of a runtime's service counters, from
/// `Runtime::metrics()`.
///
/// Counting invariant: every submission ends up in exactly one of
/// `completed`, `rejected`, or `cancelled`, so once a runtime has drained
/// (no queued or in-flight jobs), `submitted == completed + rejected +
/// cancelled`.
///
/// On modelled-engine runtimes (`sim`/`seq`/`pr`) jobs run eagerly inside
/// `submit`, so `submitted`/`completed`/latency are still meaningful but
/// the queue, fairness, and deadline fields stay at their defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetrics {
    /// The configured admission capacity (0 = unbounded).
    pub admission_capacity: usize,
    /// Jobs currently admitted but not yet dispatched to the pool.
    pub queue_depth: usize,
    /// High-water mark of `queue_depth` over the runtime's lifetime.
    pub queue_depth_peak: usize,
    /// Jobs currently executing (dispatched, not yet finished).
    pub in_flight: usize,
    /// Submission attempts, including rejected ones.
    pub submitted: u64,
    /// Jobs that ran to completion (successfully or with a job error).
    pub completed: u64,
    /// Submissions rejected with `PodsError::QueueFull`.
    pub rejected: u64,
    /// Jobs cancelled before or during execution (deadline, explicit
    /// cancel, or runtime shutdown).
    pub cancelled: u64,
    /// Completed jobs per second of runtime uptime.
    pub jobs_per_sec: f64,
    /// Median job latency (submission to completion) in microseconds,
    /// reported as the upper bound of its power-of-two histogram bucket.
    pub p50_latency_us: f64,
    /// 99th-percentile job latency in microseconds (bucket upper bound).
    pub p99_latency_us: f64,
    /// The full latency histogram as cumulative `(upper_bound_us, count)`
    /// pairs, one per power-of-two bucket (ascending bounds; the last
    /// count equals `completed`). Feeds [`ServiceMetrics::render_prometheus`].
    pub latency_buckets: Vec<(f64, u64)>,
    /// Sum of all completed-job latencies in microseconds.
    pub latency_sum_us: u64,
    /// Largest number of I-structure arrays any single job held live.
    pub peak_live_arrays: usize,
    /// Largest approximate I-structure byte footprint of any single job.
    pub peak_array_bytes: usize,
    /// Total I-structure arrays allocated across all finished jobs.
    pub arrays_allocated: u64,
    /// Completed-job counts per client, sorted by client id (only clients
    /// with at least one completion appear).
    pub completed_by_client: Vec<(ClientId, u64)>,
}

impl ServiceMetrics {
    /// Completed jobs attributed to `client` (0 if it never completed one).
    pub fn completed_for(&self, client: ClientId) -> u64 {
        self.completed_by_client
            .iter()
            .find(|(c, _)| *c == client)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): counters for the submission lifecycle, gauges for
    /// queue/pool occupancy, the job-latency histogram in seconds, and
    /// per-client completion counters. Serve the string from a `/metrics`
    /// endpoint or write it to a textfile-collector path.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let mut metric = |name: &str, help: &str, kind: &str, value: String| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {value}");
        };
        metric(
            "pods_jobs_submitted_total",
            "Submission attempts, including rejected ones.",
            "counter",
            self.submitted.to_string(),
        );
        metric(
            "pods_jobs_completed_total",
            "Jobs that ran to completion.",
            "counter",
            self.completed.to_string(),
        );
        metric(
            "pods_jobs_rejected_total",
            "Submissions rejected because the admission queue was full.",
            "counter",
            self.rejected.to_string(),
        );
        metric(
            "pods_jobs_cancelled_total",
            "Jobs cancelled by deadline, explicit cancel, or shutdown.",
            "counter",
            self.cancelled.to_string(),
        );
        metric(
            "pods_admission_capacity",
            "Configured admission-queue capacity (0 = unbounded).",
            "gauge",
            self.admission_capacity.to_string(),
        );
        metric(
            "pods_queue_depth",
            "Jobs admitted but not yet dispatched to the pool.",
            "gauge",
            self.queue_depth.to_string(),
        );
        metric(
            "pods_queue_depth_peak",
            "High-water mark of the admission-queue depth.",
            "gauge",
            self.queue_depth_peak.to_string(),
        );
        metric(
            "pods_jobs_in_flight",
            "Jobs currently executing on the pool.",
            "gauge",
            self.in_flight.to_string(),
        );
        metric(
            "pods_peak_live_arrays",
            "Largest number of I-structure arrays any single job held live.",
            "gauge",
            self.peak_live_arrays.to_string(),
        );
        metric(
            "pods_peak_array_bytes",
            "Largest approximate I-structure byte footprint of any job.",
            "gauge",
            self.peak_array_bytes.to_string(),
        );
        metric(
            "pods_arrays_allocated_total",
            "I-structure arrays allocated across all finished jobs.",
            "counter",
            self.arrays_allocated.to_string(),
        );
        let _ = writeln!(
            out,
            "# HELP pods_job_latency_seconds Job latency from admission to completion."
        );
        let _ = writeln!(out, "# TYPE pods_job_latency_seconds histogram");
        for (bound_us, count) in &self.latency_buckets {
            let _ = writeln!(
                out,
                "pods_job_latency_seconds_bucket{{le=\"{}\"}} {count}",
                bound_us / 1e6
            );
        }
        let total = self.latency_buckets.last().map_or(0, |(_, n)| *n);
        let _ = writeln!(
            out,
            "pods_job_latency_seconds_bucket{{le=\"+Inf\"}} {total}"
        );
        let _ = writeln!(
            out,
            "pods_job_latency_seconds_sum {}",
            self.latency_sum_us as f64 / 1e6
        );
        let _ = writeln!(out, "pods_job_latency_seconds_count {total}");
        if !self.completed_by_client.is_empty() {
            let _ = writeln!(
                out,
                "# HELP pods_jobs_completed_by_client_total Completed jobs per client."
            );
            let _ = writeln!(out, "# TYPE pods_jobs_completed_by_client_total counter");
            for (client, n) in &self.completed_by_client {
                let _ = writeln!(
                    out,
                    "pods_jobs_completed_by_client_total{{client=\"{}\"}} {n}",
                    client.0
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_recorded_latencies() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0.0, "empty histogram reports zero");
        // 99 fast jobs at ~3µs, one slow at ~1000µs.
        for _ in 0..99 {
            h.record(3);
        }
        h.record(1000);
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        assert!(
            (4.0..=8.0).contains(&p50),
            "p50 should land in the 3µs bucket's bound, got {p50}"
        );
        assert!(p99 <= p50 * 8.0, "p99 {p99} should still be fast");
        assert!(
            h.percentile(1.0) >= 1024.0,
            "max percentile must see the slow job"
        );
    }

    #[test]
    fn counting_invariant_holds_in_snapshot() {
        let m = MetricsRegistry::new(4);
        for _ in 0..5 {
            m.note_submitted();
        }
        m.note_rejected();
        m.note_cancelled();
        m.note_completed(ClientId(7), Duration::from_micros(10));
        m.note_completed(ClientId(7), Duration::from_micros(20));
        m.note_completed(ClientId(9), Duration::from_micros(30));
        let snap = m.snapshot();
        assert_eq!(snap.admission_capacity, 4);
        assert_eq!(snap.submitted, 5);
        assert_eq!(
            snap.submitted,
            snap.completed + snap.rejected + snap.cancelled
        );
        assert_eq!(snap.completed_for(ClientId(7)), 2);
        assert_eq!(snap.completed_for(ClientId(9)), 1);
        assert_eq!(snap.completed_for(ClientId(1)), 0);
        assert!(snap.jobs_per_sec > 0.0);
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let m = MetricsRegistry::new(4);
        for _ in 0..3 {
            m.note_submitted();
        }
        m.note_completed(ClientId(7), Duration::from_micros(10));
        m.note_completed(ClientId(9), Duration::from_micros(2000));
        m.note_rejected();
        let text = m.snapshot().render_prometheus();

        // Every line is a comment or a `name{labels} value` sample whose
        // value parses as a number.
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(name.starts_with("pods_"), "unprefixed metric: {line}");
            assert!(value.parse::<f64>().is_ok(), "non-numeric value: {line}");
        }
        // Counters carry TYPE metadata and the lifecycle totals are there.
        for needle in [
            "# TYPE pods_jobs_submitted_total counter",
            "pods_jobs_submitted_total 3",
            "pods_jobs_completed_total 2",
            "pods_jobs_rejected_total 1",
            "# TYPE pods_job_latency_seconds histogram",
            "pods_job_latency_seconds_count 2",
            "pods_jobs_completed_by_client_total{client=\"7\"} 1",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        // Histogram buckets are cumulative with ascending bounds and the
        // +Inf bucket equals the count.
        let mut last_bound = f64::MIN;
        let mut last_count = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("pods_job_latency_seconds_bucket{le=\""))
        {
            let rest = &line["pods_job_latency_seconds_bucket{le=\"".len()..];
            let (bound, count) = rest.split_once("\"} ").unwrap();
            let count: u64 = count.parse().unwrap();
            assert!(count >= last_count, "non-cumulative bucket: {line}");
            last_count = count;
            if bound == "+Inf" {
                assert_eq!(count, 2, "+Inf bucket must equal the count");
            } else {
                let bound: f64 = bound.parse().unwrap();
                assert!(bound > last_bound, "non-ascending le: {line}");
                last_bound = bound;
            }
        }
        assert_eq!(last_count, 2);
    }

    #[test]
    fn depth_peak_is_monotonic() {
        let m = MetricsRegistry::new(8);
        m.set_depth(3);
        m.set_depth(7);
        m.set_depth(2);
        let snap = m.snapshot();
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.queue_depth_peak, 7);
    }
}
