//! Property-based tests (proptest) over the core data structures and the
//! compilation pipeline, exercised through the public APIs of the workspace
//! crates.

use pods_istructure::{ArrayHeader, ArrayId, ArrayShape, DimRange, Partitioning, PeId};
use proptest::prelude::*;

proptest! {
    /// Every element offset of any array belongs to exactly one PE segment.
    #[test]
    fn partitioning_covers_every_element_exactly_once(
        rows in 1usize..40,
        cols in 1usize..40,
        pes in 1usize..33,
        page in 1usize..64,
    ) {
        let shape = ArrayShape::matrix(rows, cols);
        let part = Partitioning::new(shape.len(), page, pes);
        for offset in 0..shape.len() {
            let owner = part.owner_of(offset);
            let holders = part
                .segments()
                .iter()
                .filter(|s| s.contains(offset))
                .count();
            prop_assert_eq!(holders, 1);
            prop_assert!(part.segment_of(owner).contains(offset));
        }
        let total: usize = part.segments().iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, shape.len());
    }

    /// The first-element-ownership rule assigns every row to exactly one PE,
    /// and the owned rows always lie inside the touched rows.
    #[test]
    fn row_ownership_is_a_partition(
        rows in 1usize..50,
        cols in 1usize..50,
        pes in 1usize..33,
    ) {
        let shape = ArrayShape::matrix(rows, cols);
        let part = Partitioning::new(shape.len(), 32, pes);
        let header = ArrayHeader::new(ArrayId(0), "t", shape, part);
        let mut counts = vec![0usize; rows];
        for pe in 0..pes {
            let owned = header.owned_rows(PeId(pe));
            if owned.is_empty() {
                continue;
            }
            let touched = header.touched_rows(PeId(pe));
            prop_assert!(touched.start <= owned.start && owned.end <= touched.end);
            for r in owned.start..=owned.end {
                counts[r as usize] += 1;
            }
        }
        prop_assert!(counts.iter().all(|&c| c == 1));
    }

    /// Row-major offsets and their inverse are consistent for any shape.
    #[test]
    fn offsets_roundtrip(
        dims in proptest::collection::vec(1usize..12, 1..4),
        seed in 0usize..1000,
    ) {
        let shape = ArrayShape::new(dims);
        let offset = seed % shape.len();
        let idx = shape.unflatten(offset).unwrap();
        let idx_i64: Vec<i64> = idx.iter().map(|&i| i as i64).collect();
        prop_assert_eq!(shape.offset_of(&idx_i64), Some(offset));
    }

    /// The per-row column responsibilities of all PEs tile each row exactly.
    #[test]
    fn per_row_column_ranges_tile_the_row(
        rows in 1usize..20,
        cols in 1usize..40,
        pes in 1usize..17,
    ) {
        let shape = ArrayShape::matrix(rows, cols);
        let part = Partitioning::new(shape.len(), 8, pes);
        let header = ArrayHeader::new(ArrayId(0), "t", shape, part);
        for row in 0..rows as i64 {
            let mut covered = vec![false; cols];
            for pe in 0..pes {
                let r = header.local_cols_in_row(PeId(pe), row);
                if r.is_empty() {
                    continue;
                }
                for c in r.start..=r.end {
                    prop_assert!(!covered[c as usize], "column covered twice");
                    covered[c as usize] = true;
                }
            }
            prop_assert!(covered.iter().all(|&c| c));
        }
    }

    /// Intersection of dimension ranges is commutative and never grows.
    #[test]
    fn dim_range_intersection_properties(
        a in -50i64..50, b in -50i64..50,
        c in -50i64..50, d in -50i64..50,
    ) {
        let r1 = DimRange::new(a.min(b), a.max(b));
        let r2 = DimRange::new(c.min(d), c.max(d));
        let i1 = r1.intersect(&r2);
        let i2 = r2.intersect(&r1);
        prop_assert_eq!(i1, i2);
        prop_assert!(i1.len() <= r1.len() && i1.len() <= r2.len());
        for x in -60..60 {
            prop_assert_eq!(i1.contains(x), r1.contains(x) && r2.contains(x));
        }
    }

    /// The lexer and parser never panic on arbitrary input strings.
    #[test]
    fn front_end_is_panic_free_on_arbitrary_input(src in "\\PC*") {
        let _ = pods_idlang::compile(&src);
    }

    /// `EngineKind` parse/display round-trips over every canonical name and
    /// alias, in any character casing, and `Display` always prints the
    /// canonical name.
    #[test]
    fn engine_kind_parse_display_roundtrip(pick in 0usize..1000, upper_mask in 0u32..256) {
        let spellings: Vec<(pods::EngineKind, &str)> = pods::EngineKind::ALL
            .into_iter()
            .flat_map(|k| k.aliases().iter().map(move |a| (k, *a)))
            .collect();
        let (kind, alias) = spellings[pick % spellings.len()];
        // Re-case the alias with an arbitrary upper/lower mask.
        let mixed: String = alias
            .chars()
            .enumerate()
            .map(|(i, c)| {
                if upper_mask & (1 << (i % 8)) != 0 {
                    c.to_ascii_uppercase()
                } else {
                    c.to_ascii_lowercase()
                }
            })
            .collect();
        let parsed: pods::EngineKind = mixed.parse().unwrap();
        prop_assert_eq!(parsed, kind);
        // Display emits the canonical name, which parses back to the kind.
        let canonical = parsed.to_string();
        prop_assert_eq!(canonical.as_str(), kind.name());
        prop_assert_eq!(canonical.parse::<pods::EngineKind>().unwrap(), kind);
        // And the canonical name is the first alias.
        prop_assert_eq!(kind.aliases()[0], kind.name());
    }

    /// Compiling and simulating a generated "fill a vector with an affine
    /// function" program yields exactly the expected values on 1 and 4 PEs.
    #[test]
    fn generated_fill_programs_compute_affine_functions(
        n in 1i64..40,
        scale in -5i64..6,
        offset in -10i64..11,
    ) {
        let src = format!(
            "def main() {{ a = array({n}); for i = 0 to {n} - 1 {{ a[i] = i * {scale} + {offset}; }} return a; }}"
        );
        let program = pods::compile(&src).unwrap();
        for pes in [1usize, 4] {
            let outcome = program
                .run(&[], &pods::RunOptions::with_pes(pes))
                .unwrap();
            let a = outcome.result.returned_array().unwrap();
            prop_assert!(a.is_complete());
            for i in 0..n {
                prop_assert_eq!(
                    a.get(&[i]),
                    Some(pods::Value::Int(i * scale + offset))
                );
            }
        }
    }
}
