//! Flight-recorder contract tests, exercised through the public runtime
//! API on both pooled engines:
//!
//! 1. a runtime built without tracing records nothing (and `PODS_TRACE`
//!    stays an opt-in — these tests never set it),
//! 2. under a concurrent soak the merged trace is time-ordered and its
//!    `RunBegin`/`RunEnd` spans are balanced per (lane, instance),
//! 3. ring overflow degrades to "newest window + exact drop count"
//!    rather than unbounded memory,
//! 4. the Chrome-trace export is well-formed JSON with one span pair per
//!    recorded `RunBegin`,
//! 5. traced outcomes carry a per-job breakdown whose phases are
//!    consistent with the recorded events.

use pods::{
    compile, CompiledProgram, EngineKind, Runtime, TraceConfig, TraceEvent, TraceEventKind, Value,
};
use std::collections::HashMap;

fn fill_program() -> CompiledProgram {
    compile(
        "def main(n) {
             a = matrix(n, n);
             for i = 0 to n - 1 {
                 for j = 0 to n - 1 { a[i, j] = f(i, j, n); }
             }
             return a;
         }
         def f(i, j, n) { return sqrt((i * n + j) * 1.0); }",
    )
    .expect("fill program compiles")
}

/// Asserts the merged stream is sorted by (timestamp, lane) and that every
/// `RunBegin` on a lane is matched by a `RunEnd` for the same instance.
fn assert_ordered_and_balanced(events: &[TraceEvent]) {
    assert!(
        events
            .windows(2)
            .all(|w| (w[0].t_us, w[0].lane) <= (w[1].t_us, w[1].lane)),
        "merged trace must be time-ordered with lane as tie-break"
    );
    let mut open: HashMap<(u32, u64), i64> = HashMap::new();
    for ev in events {
        match ev.kind {
            TraceEventKind::RunBegin => *open.entry((ev.lane, ev.instance)).or_default() += 1,
            TraceEventKind::RunEnd => {
                let depth = open.entry((ev.lane, ev.instance)).or_default();
                assert!(
                    *depth > 0,
                    "RunEnd without an open RunBegin on lane {} instance {}",
                    ev.lane,
                    ev.instance
                );
                *depth -= 1;
            }
            _ => {}
        }
    }
    for ((lane, instance), depth) in open {
        assert_eq!(
            depth, 0,
            "unclosed run span on lane {lane} instance {instance}"
        );
    }
}

fn soak(kind: EngineKind) {
    let program = fill_program();
    let runtime = Runtime::builder(kind)
        .workers(4)
        .trace(TraceConfig::new().buffer_size(1 << 20))
        .build();
    assert!(runtime.tracing_enabled());
    let prepared = runtime.prepare(&program);

    let handles: Vec<_> = std::thread::scope(|scope| {
        (0..4)
            .map(|_| {
                scope.spawn(|| {
                    (0..6)
                        .map(|_| runtime.submit(&prepared, &[Value::Int(12)]).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect()
    });
    for handle in handles {
        handle.wait().expect("soak job succeeds");
    }

    let trace = runtime.take_trace();
    assert_eq!(trace.dropped, 0, "soak must fit the enlarged rings");
    assert_eq!(trace.lanes, 5, "4 worker lanes + 1 service lane");
    assert!(!trace.is_empty());
    assert_ordered_and_balanced(&trace.events);

    // Every admitted job ran to completion, and lifecycle events live on
    // the service lane.
    let count = |kind: TraceEventKind| {
        trace
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .inspect(|e| assert_eq!(e.lane, 4, "{kind:?} belongs on the service lane"))
            .count()
    };
    assert_eq!(count(TraceEventKind::JobAdmitted), 24);
    assert_eq!(count(TraceEventKind::JobDispatched), 24);
    assert_eq!(count(TraceEventKind::JobFinished), 24);

    // Draining consumed the stream.
    assert!(runtime.take_trace().is_empty());
}

#[test]
fn native_soak_trace_is_ordered_and_span_balanced() {
    soak(EngineKind::Native);
}

#[test]
fn async_soak_trace_is_ordered_and_span_balanced() {
    soak(EngineKind::AsyncCoop);
}

#[test]
fn disabled_tracing_records_nothing() {
    let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
    assert!(!runtime.tracing_enabled());
    runtime
        .run(&fill_program(), &[Value::Int(16)])
        .expect("untraced run succeeds");
    let trace = runtime.take_trace();
    assert!(trace.is_empty());
    assert_eq!(trace.dropped, 0);
}

#[test]
fn ring_overflow_keeps_the_newest_window() {
    let runtime = Runtime::builder(EngineKind::Native)
        .workers(2)
        .trace(TraceConfig::new().buffer_size(16))
        .build();
    let program = fill_program();
    for _ in 0..3 {
        runtime.run(&program, &[Value::Int(24)]).unwrap();
    }
    let trace = runtime.take_trace();
    assert!(trace.dropped > 0, "a 24x24 fill overflows 16-slot rings");
    assert!(trace.events.len() <= 16 * trace.lanes);
    // The newest window must include the end of the final job.
    assert!(trace
        .events
        .iter()
        .any(|e| e.kind == TraceEventKind::JobFinished));
}

#[test]
fn chrome_trace_export_is_well_formed() {
    let runtime = Runtime::builder(EngineKind::Native)
        .workers(2)
        .trace(TraceConfig::new())
        .build();
    runtime.run(&fill_program(), &[Value::Int(12)]).unwrap();
    let trace = runtime.take_trace();
    let json = trace.chrome_trace();

    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"droppedEvents\":0"));
    assert!(json.ends_with('}'));
    // Structural sanity without a JSON dependency: quotes and brackets
    // balance (the serializer never emits strings containing either).
    assert_eq!(json.matches('"').count() % 2, 0);
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());

    // One "B" and one "E" Chrome phase per recorded span half.
    let begins = trace
        .events
        .iter()
        .filter(|e| e.kind == TraceEventKind::RunBegin)
        .count();
    assert_eq!(json.matches("\"ph\":\"B\"").count(), begins);
    assert_eq!(json.matches("\"ph\":\"E\"").count(), begins);
}

#[test]
fn traced_outcomes_carry_a_job_breakdown() {
    let runtime = Runtime::builder(EngineKind::Native)
        .workers(2)
        .trace(TraceConfig::new())
        .build();
    let outcome = runtime.run(&fill_program(), &[Value::Int(16)]).unwrap();
    let breakdown = outcome
        .diagnostics
        .expect("traced pooled runs attach a breakdown");
    assert!(breakdown.run_us > 0, "the fill spends measurable run time");
    let text = breakdown.to_string();
    for phase in ["queue", "run", "blocked"] {
        assert!(
            text.contains(phase),
            "breakdown text mentions {phase}: {text}"
        );
    }

    // Untraced runtimes attach none.
    let plain = Runtime::builder(EngineKind::Native).workers(2).build();
    let outcome = plain.run(&fill_program(), &[Value::Int(16)]).unwrap();
    assert!(outcome.diagnostics.is_none());
}
