//! Cross-crate integration tests: the full pipeline (language front end,
//! dataflow analysis, SP translation, partitioning, machine simulation)
//! validated end to end against the independent sequential interpreter.

use pods::{RunOptions, Value};
use pods_baseline::run_sequential;
use pods_machine::TimingModel;

/// Runs a workload through PODS on `pes` PEs and through the sequential
/// interpreter, and asserts that a named array matches element-wise.
fn assert_matches_reference(source: &str, args: &[Value], array: &str, pes: &[usize]) {
    let hir = pods_idlang::compile(source).expect("front end");
    let reference = run_sequential(&hir, args, &TimingModel::default()).expect("reference run");
    let expected = reference
        .array(array)
        .expect("reference array")
        .to_f64(f64::NAN);

    let program = pods::compile(source).expect("pipeline compile");
    for &p in pes {
        let outcome = program
            .run(args, &RunOptions::with_pes(p))
            .unwrap_or_else(|e| panic!("simulation on {p} PEs failed: {e}"));
        let got = outcome
            .result
            .array(array)
            .unwrap_or_else(|| panic!("array `{array}` missing on {p} PEs"))
            .to_f64(f64::NAN);
        assert_eq!(expected.len(), got.len());
        for (i, (a, b)) in expected.iter().zip(&got).enumerate() {
            assert!(
                (a - b).abs() < 1e-9 || (a.is_nan() && b.is_nan()),
                "element {i} differs on {p} PEs: reference {a}, PODS {b}"
            );
        }
    }
}

#[test]
fn paper_example_matches_reference_on_all_machine_sizes() {
    assert_matches_reference(pods_workloads::PAPER_EXAMPLE, &[], "a", &[1, 2, 4, 8]);
}

#[test]
fn fill_and_stencil_match_reference() {
    assert_matches_reference(pods_workloads::FILL, &[Value::Int(16)], "a", &[1, 4]);
    assert_matches_reference(
        pods_workloads::STENCIL,
        &[Value::Int(16)],
        "next",
        &[1, 4, 8],
    );
}

#[test]
fn recurrence_matches_reference_even_though_it_cannot_distribute() {
    assert_matches_reference(
        pods_workloads::RECURRENCE,
        &[Value::Int(64)],
        "acc",
        &[1, 4],
    );
}

#[test]
fn matmul_matches_reference() {
    assert_matches_reference(pods_workloads::MATMUL, &[Value::Int(8)], "c", &[1, 4]);
}

#[test]
fn simple_benchmark_matches_reference_across_machine_sizes() {
    // The full SIMPLE time step: init, velocity/position, hydrodynamics,
    // conduction sweeps, checksum. An 8x8 mesh keeps the test fast while
    // exercising every routine, every sweep direction, and remote traffic.
    assert_matches_reference(
        pods_workloads::simple::SIMPLE,
        &[Value::Int(8)],
        "thetan",
        &[1, 2, 4],
    );
}

#[test]
fn simple_speedup_appears_on_larger_meshes() {
    let program = pods::compile(pods_workloads::simple::SIMPLE).unwrap();
    let points =
        pods::speedup_sweep(&program, &[Value::Int(16)], &[1, 8], &RunOptions::default()).unwrap();
    assert!(
        points[1].speedup > 1.2,
        "8 PEs should beat 1 PE on a 16x16 mesh, got {:.2}x",
        points[1].speedup
    );
}

#[test]
fn simple_partitioning_decisions_follow_the_paper() {
    use pods::LoopDecision;
    let program = pods::compile(pods_workloads::simple::SIMPLE).unwrap();
    let outcome = program
        .run(&[Value::Int(8)], &RunOptions::with_pes(4))
        .unwrap();
    let report = &outcome.partition;

    // velocity_position and hydrodynamics outer loops distribute.
    for function in ["init_state", "velocity_position", "hydrodynamics"] {
        assert!(
            matches!(
                report.decision_for(function, 0),
                Some(LoopDecision::Distributed { .. })
            ),
            "{function} outer loop should be distributed: {:?}",
            report.decision_for(function, 0)
        );
    }
    // At least one conduction recurrence stays local to its row (carried).
    assert!(report
        .loops
        .iter()
        .filter(|l| l.key.function == "conduction")
        .any(|l| matches!(l.decision, LoopDecision::LocalUnderDistributed { .. })));
}

#[test]
fn single_pe_pods_is_within_a_small_factor_of_the_sequential_baseline() {
    // The §5.3.4 efficiency comparison: the paper measured roughly 2x.
    let source = pods_workloads::simple::SIMPLE;
    let hir = pods_idlang::compile(source).unwrap();
    let seq = run_sequential(&hir, &[Value::Int(16)], &TimingModel::default()).unwrap();
    let program = pods::compile(source).unwrap();
    let outcome = program
        .run(&[Value::Int(16)], &RunOptions::with_pes(1))
        .unwrap();
    let ratio = outcome.elapsed_us() / seq.elapsed_us;
    assert!(
        ratio > 1.0 && ratio < 4.0,
        "PODS 1-PE overhead ratio {ratio:.2} outside the plausible band"
    );
}

#[test]
fn execution_unit_dominates_the_other_functional_units() {
    // Figure 8's headline observation.
    use pods::Unit;
    let program = pods::compile(pods_workloads::simple::SIMPLE).unwrap();
    let outcome = program
        .run(&[Value::Int(16)], &RunOptions::with_pes(8))
        .unwrap();
    let stats = &outcome.result.stats;
    let eu = stats.utilization(Unit::Execution);
    for unit in [Unit::Matching, Unit::MemoryManager, Unit::ArrayManager] {
        assert!(
            eu > stats.utilization(unit),
            "EU ({eu:.3}) should dominate {unit}"
        );
    }
}

#[test]
fn pingali_rogers_model_trails_pods_at_scale_on_simple() {
    // Figure 10: PODS outperforms the static-compilation approach when the
    // problem is large enough. We check the qualitative relation on a
    // moderate mesh to keep test time reasonable.
    let source = pods_workloads::simple::SIMPLE;
    let hir = pods_idlang::compile(source).unwrap();
    let seq = run_sequential(&hir, &[Value::Int(16)], &TimingModel::default()).unwrap();
    let pr = pods_baseline::PrModel::default();
    let pr32 = pr.estimate(&seq, 32);
    // Both systems speed up; the exact ordering at small meshes is noisy, so
    // just require both to be sane and the PR model to saturate.
    let pr2 = pr.estimate(&seq, 2);
    assert!(pr2.speedup > 1.0);
    assert!(
        pr32.speedup / 32.0 < pr2.speedup / 2.0,
        "PR efficiency must fall"
    );
}

#[test]
fn ablation_disabling_the_page_cache_increases_remote_traffic() {
    let program = pods::compile(pods_workloads::STENCIL).unwrap();
    let mut with_cache = RunOptions::with_pes(8);
    with_cache.remote_page_cache = true;
    let mut without_cache = RunOptions::with_pes(8);
    without_cache.remote_page_cache = false;
    let a = program.run(&[Value::Int(24)], &with_cache).unwrap();
    let b = program.run(&[Value::Int(24)], &without_cache).unwrap();
    assert!(
        b.result.stats.total_remote_reads() >= a.result.stats.total_remote_reads(),
        "disabling the cache should not reduce remote reads"
    );
    assert!(b.result.array("next").unwrap().is_complete());
}

#[test]
fn run_options_and_reports_are_exposed_through_the_facade() {
    // Exercise the umbrella crate re-exports.
    let program = pods_repro::compile("def main() { return 1 + 1; }").unwrap();
    let outcome = program
        .run(&[], &pods_repro::RunOptions::default())
        .unwrap();
    assert_eq!(outcome.result.return_value, Some(pods_repro::Value::Int(2)));
}
