//! Differential tests of the execution layer: every `pods_workloads` kernel
//! runs through every registered engine, and all engines must agree on the
//! returned value and the contents of every allocated array (the sequential
//! interpreter acts as the oracle). This is the safety net that lets the
//! engines evolve independently: a scheduling bug in the native thread pool
//! or a protocol bug in the simulator shows up as a cross-engine diff.
//!
//! Runs go through the typed [`Runtime`] API (one runtime per engine kind
//! and machine size), which also exercises the persistent native pool on
//! every workload.

use pods::{ChunkPolicy, EngineKind, RunOptions, Runtime, Value};

/// The workload matrix: name, source, args, and a small machine-size sweep.
fn workloads() -> Vec<(&'static str, &'static str, Vec<Value>)> {
    vec![
        ("paper_example", pods_workloads::PAPER_EXAMPLE, vec![]),
        ("fill", pods_workloads::FILL, vec![Value::Int(12)]),
        ("matmul", pods_workloads::MATMUL, vec![Value::Int(6)]),
        ("stencil", pods_workloads::STENCIL, vec![Value::Int(12)]),
        (
            "recurrence",
            pods_workloads::RECURRENCE,
            vec![Value::Int(48)],
        ),
        (
            "simple",
            pods_workloads::simple::SIMPLE,
            vec![Value::Int(8)],
        ),
    ]
}

fn values_close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 || (a.is_nan() && b.is_nan())
}

/// The engines under differential test. By default every registered engine
/// is swept; setting `PODS_ENGINE` restricts the sweep to that one engine
/// (still checked against the sequential oracle), so CI can re-run the full
/// workload matrix focused on each pooled scheduler in turn:
/// `PODS_ENGINE=native cargo test --test engines_differential`.
fn engines_under_test() -> Vec<EngineKind> {
    match std::env::var("PODS_ENGINE") {
        Ok(name) => {
            let kind: EngineKind = name.parse().unwrap_or_else(|e| panic!("PODS_ENGINE: {e}"));
            vec![kind]
        }
        Err(_) => EngineKind::ALL.to_vec(),
    }
}

/// Runs one workload through every engine on several machine sizes and
/// checks full agreement with the sequential oracle.
fn assert_engines_agree(name: &str, source: &str, args: &[Value], pe_counts: &[usize]) {
    let program = pods::compile(source).unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
    let oracle = Runtime::with_options(EngineKind::Seq, RunOptions::default())
        .run(&program, args)
        .unwrap_or_else(|e| panic!("{name}: oracle run failed: {e}"));

    for kind in engines_under_test() {
        let engine = kind.name();
        // One runtime per (engine, machine size, delivery batch, grain,
        // specialization): the native pool / async executor is reused
        // across every workload size swept below. Both pooled engines also
        // run with unbatched (1) and batched (16) wake-up delivery — the
        // batching must be invisible to results — and every engine
        // additionally sweeps the chunk grain (1 = unchunked, a fixed 4,
        // and the auto-tuned grain) at the batched delivery, since chunking
        // must be equally invisible. Every configuration then runs both
        // with and without prepare-time specialization: super-op dispatch
        // must be just as invisible as batching and chunking.
        let batches: &[usize] = if kind.is_pooled() { &[1, 16] } else { &[16] };
        let mut configs: Vec<(usize, ChunkPolicy, bool)> = Vec::new();
        for spec in [true, false] {
            configs.extend(batches.iter().map(|&b| (b, ChunkPolicy::Fixed(1), spec)));
            configs.push((16, ChunkPolicy::Fixed(4), spec));
            configs.push((16, ChunkPolicy::Auto, spec));
        }
        for &pes in pe_counts {
            for &(batch, chunk, spec) in &configs {
                let runtime = Runtime::builder(kind)
                    .workers(pes)
                    .delivery_batch(batch)
                    .chunk_policy(chunk)
                    .specialize(spec)
                    .build();
                let outcome = runtime.run(&program, args).unwrap_or_else(|e| {
                    panic!(
                        "{name}: engine `{engine}` on {pes} PEs \
                         (batch {batch}, chunk {chunk}, specialize {spec}) failed: {e}"
                    )
                });

                // Return values agree. Array references are compared through
                // the arrays they denote (allocation *ids* legitimately differ
                // across engines: the simulator's split-phase allocations can
                // complete out of program order).
                let label = format!("{name}/{engine}/{pes}/batch{batch}/chunk{chunk}/spec{spec}");
                match (&oracle.return_value, &outcome.return_value) {
                    (Some(Value::ArrayRef(_)), Some(Value::ArrayRef(_))) => {
                        let a = oracle.returned_array().expect("oracle returned array");
                        let b = outcome.returned_array().expect("engine returned array");
                        assert_eq!(a.name, b.name, "{label}: returned array identity");
                    }
                    (Some(a), Some(b)) => {
                        if let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) {
                            assert!(
                                values_close(x, y),
                                "{label}: return value {y} != oracle {x}"
                            );
                        } else {
                            assert_eq!(a, b, "{label}: return value mismatch");
                        }
                    }
                    (a, b) => assert_eq!(a, b, "{label}: return value presence"),
                }

                // Every array the oracle allocated exists (matched by source
                // name) with identical shape and element-wise identical
                // contents.
                assert_eq!(
                    oracle.arrays.len(),
                    outcome.arrays.len(),
                    "{label}: array count"
                );
                for expected in &oracle.arrays {
                    let got = outcome
                        .array(&expected.name)
                        .unwrap_or_else(|| panic!("{label}: array `{}` missing", expected.name));
                    assert_eq!(
                        expected.shape, got.shape,
                        "{label}: shape of `{}`",
                        expected.name
                    );
                    let ev = expected.to_f64(f64::NAN);
                    let gv = got.to_f64(f64::NAN);
                    for (i, (a, b)) in ev.iter().zip(&gv).enumerate() {
                        assert!(
                            values_close(*a, *b),
                            "{label}: `{}`[{i}] = {b}, oracle {a}",
                            expected.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn paper_example_agrees_across_all_engines() {
    let (name, src, args) = workloads().remove(0);
    assert_engines_agree(name, src, &args, &[1, 2, 4]);
}

#[test]
fn fill_agrees_across_all_engines() {
    let (name, src, args) = workloads().remove(1);
    assert_engines_agree(name, src, &args, &[1, 2, 4]);
}

#[test]
fn matmul_agrees_across_all_engines() {
    let (name, src, args) = workloads().remove(2);
    assert_engines_agree(name, src, &args, &[1, 4]);
}

#[test]
fn stencil_agrees_across_all_engines() {
    let (name, src, args) = workloads().remove(3);
    assert_engines_agree(name, src, &args, &[1, 4]);
}

#[test]
fn recurrence_agrees_across_all_engines() {
    let (name, src, args) = workloads().remove(4);
    assert_engines_agree(name, src, &args, &[1, 4]);
}

#[test]
fn simple_agrees_across_all_engines() {
    let (name, src, args) = workloads().remove(5);
    assert_engines_agree(name, src, &args, &[1, 2, 4]);
}

#[test]
fn unknown_engine_names_are_rejected() {
    let program = pods::compile("def main() { return 1; }").unwrap();
    let err = program
        .run_on("warp-drive", &[], &RunOptions::default())
        .unwrap_err();
    assert!(matches!(err, pods::PodsError::UnknownEngine { .. }));
    assert!(err.to_string().contains("native"));
}

#[test]
fn parallel_engines_agree_on_partitioning_decisions() {
    // All three parallel engines run the same partitioned program; their
    // reports must be identical for identical options.
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let opts = RunOptions::with_pes(4);
    let sim = program.run_on("sim", &[Value::Int(8)], &opts).unwrap();
    let native = program.run_on("native", &[Value::Int(8)], &opts).unwrap();
    let coop = program.run_on("async", &[Value::Int(8)], &opts).unwrap();
    assert_eq!(
        sim.partition().unwrap().loops,
        native.partition().unwrap().loops
    );
    assert_eq!(
        sim.partition().unwrap().loops,
        coop.partition().unwrap().loops
    );
}

#[test]
fn async_engine_agrees_on_prepared_and_raw_submissions() {
    // The acceptance bar for the cooperative engine: raw programs,
    // prepared handles, and handles prepared on a *native* runtime (the
    // JobSpec is engine-portable) all match the oracle, batched and
    // unbatched.
    let program = pods::compile(pods_workloads::STENCIL).unwrap();
    let args = [Value::Int(12)];
    let oracle = Runtime::with_options(EngineKind::Seq, RunOptions::default())
        .run(&program, &args)
        .unwrap();
    let expected = oracle.returned_array().unwrap().to_f64(f64::NAN);
    for batch in [1usize, 16] {
        let runtime = Runtime::builder(EngineKind::AsyncCoop)
            .workers(4)
            .delivery_batch(batch)
            .build();
        let prepared = runtime.prepare(&program);
        let native_rt = Runtime::builder(EngineKind::Native).workers(2).build();
        let foreign = native_rt.prepare(&program);
        for (label, outcome) in [
            ("raw", runtime.run(&program, &args).unwrap()),
            ("prepared", runtime.run(&prepared, &args).unwrap()),
            ("native-prepared", runtime.run(&foreign, &args).unwrap()),
        ] {
            let got = outcome.returned_array().unwrap().to_f64(f64::NAN);
            for (i, (a, b)) in expected.iter().zip(&got).enumerate() {
                assert!(
                    values_close(*a, *b),
                    "async/{label}/batch{batch}: [{i}] = {b}, oracle {a}"
                );
            }
        }
    }
}

#[test]
fn native_engine_speeds_up_on_multicore_hosts() {
    // The wall-clock speed-up claim only makes sense with enough real,
    // unloaded cores. On a single-core host the test degenerates to a smoke
    // check that multi-worker runs stay correct; on small shared runners
    // (2-3 vCPUs, where scheduler noise can eat the margin) the speed-up is
    // reported but only softly checked; the >1.5x assertion applies from 4
    // cores up. Set PODS_SKIP_SPEEDUP_ASSERT=1 to demote the assertion to a
    // report on co-tenanted machines where even 4 visible cores are noisy.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let args = [Value::Int(96)];

    // Best of several runs on a persistent Runtime (pool spawn excluded —
    // the speed-up under measurement is the execution, not the setup): one
    // clean sample is enough to demonstrate the available parallelism, and
    // the minimum is robust to scheduler noise.
    let best = |workers: usize| -> f64 {
        let runtime = Runtime::builder(EngineKind::Native)
            .workers(workers)
            .build();
        (0..5)
            .map(|_| runtime.run(&program, &args).unwrap().wall_us)
            .fold(f64::MAX, f64::min)
    };

    let one = best(1);
    let workers = cores.clamp(2, 4);
    let multi = best(workers);
    let speedup = one / multi;
    eprintln!(
        "native wall-clock on {cores}-core host: 1 worker {one:.0} us, \
         {workers} workers {multi:.0} us ({speedup:.2}x)"
    );
    if cores < 2 || std::env::var("PODS_SKIP_SPEEDUP_ASSERT").is_ok() {
        return;
    }
    if cores < 4 {
        // Soft check: multi-worker must at least not collapse.
        assert!(
            speedup > 0.5,
            "multi-worker run collapsed on a {cores}-core host: {speedup:.2}x"
        );
        return;
    }
    assert!(
        speedup > 1.5,
        "expected >1.5x wall-clock speed-up on {workers} workers \
         ({cores}-core host); got {speedup:.2}x ({one:.0} us vs {multi:.0} us). \
         On a co-tenanted machine set PODS_SKIP_SPEEDUP_ASSERT=1."
    );
}
