//! Edge-operand fuzzing of the shared instruction core, differentially
//! across all five engines.
//!
//! Each property drives one template program with adversarial operand
//! values — division by and near zero, `i64::MIN`/`i64::MAX`, negative and
//! empty and out-of-range loop bounds feeding the Range Filters,
//! zero/negative array dimensions, NaN/±inf/−0.0 floats, booleans and unit
//! where numbers are expected — through every registered engine on one and
//! three workers, and asserts that all of them agree with the sequential
//! oracle: same success/error class, and on success bit-identical values
//! (NaN compared as NaN).
//!
//! This suite is what forced the shared core's divergence fixes: the
//! Range-Filter edge-extension rule (out-of-range iterations must fault
//! like the oracle instead of being silently clamped away), wrapping
//! integer division/remainder/negation (`i64::MIN / -1` used to panic the
//! executing worker thread), and the non-boolean branch error.

use pods::{
    ChunkPolicy, CompiledProgram, EngineKind, EngineOutcome, PodsError, Runtime, SimulationError,
    Value,
};
use proptest::prelude::*;
use std::sync::LazyLock;

/// Adversarial operand values, indexed by the fuzzed case.
const EDGES: &[Value] = &[
    Value::Int(0),
    Value::Int(1),
    Value::Int(-1),
    Value::Int(3),
    Value::Int(-7),
    Value::Int(i64::MAX),
    Value::Int(i64::MIN),
    Value::Int(i64::MIN + 1),
    Value::Float(0.0),
    Value::Float(-0.0),
    Value::Float(1.5),
    Value::Float(-2.5),
    Value::Float(f64::NAN),
    Value::Float(f64::INFINITY),
    Value::Float(f64::NEG_INFINITY),
    Value::Float(f64::MIN_POSITIVE),
    Value::Bool(true),
    Value::Bool(false),
    Value::Unit,
];

/// One long-lived runtime per (engine kind, worker count, chunk grain,
/// specialization): the pooled engines' worker pools are reused across
/// every fuzz case instead of being spawned per case. The grain sweep
/// (1 = unchunked, a fixed 4, auto-tuned) pins the chunk driver — including
/// its chunk-aware Range-Filter re-evaluation — to the oracle on every
/// adversarial operand, and the specialize sweep does the same for super-op
/// dispatch (wrapping div, RF faulting, and non-boolean branches must
/// behave identically through fused runs and the plain interpreter).
type RuntimeCase = (EngineKind, usize, ChunkPolicy, bool, Runtime);

static RUNTIMES: LazyLock<Vec<RuntimeCase>> = LazyLock::new(|| {
    let mut out = Vec::new();
    for kind in EngineKind::ALL {
        for workers in [1usize, 3] {
            for chunk in [
                ChunkPolicy::Fixed(1),
                ChunkPolicy::Fixed(4),
                ChunkPolicy::Auto,
            ] {
                for specialize in [true, false] {
                    out.push((
                        kind,
                        workers,
                        chunk,
                        specialize,
                        Runtime::builder(kind)
                            .workers(workers)
                            .chunk_policy(chunk)
                            .specialize(specialize)
                            .build(),
                    ));
                }
            }
        }
    }
    out
});

/// The oracle: the sequential interpreter on default options.
static ORACLE: LazyLock<Runtime> = LazyLock::new(|| Runtime::builder(EngineKind::Seq).build());

/// Coarse outcome classes for error agreement. The parallel engines report
/// a read of a never-written element as an exact *deadlock* (nothing can
/// ever deliver the operand), which the sequential oracle — with no
/// parallelism to wait on — reports eagerly as a read-before-write error;
/// the two are the same program defect, so they share a class. Every other
/// error (arithmetic, bounds, zero-dimension allocation, single
/// assignment) is one class, and success is its own.
fn classify(result: &Result<EngineOutcome, PodsError>) -> &'static str {
    match result {
        Ok(_) => "ok",
        Err(PodsError::Simulation(SimulationError::Deadlock { .. })) => "stuck",
        Err(PodsError::Baseline(e)) if e.to_string().contains("read before") => "stuck",
        Err(_) => "error",
    }
}

/// Value equality with NaN treated as equal to NaN (bit-identical floats
/// otherwise — every engine runs the same `eval` code, so even rounding
/// must agree to the last bit).
fn values_agree(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => {
            x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan())
        }
        _ => a == b,
    }
}

fn cells_agree(a: &Option<Value>, b: &Option<Value>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => values_agree(x, y),
        (None, None) => true,
        _ => false,
    }
}

/// Runs `program(args)` on every engine and asserts full agreement with
/// the sequential oracle.
fn assert_all_engines_agree(label: &str, program: &CompiledProgram, args: &[Value]) {
    let oracle = ORACLE.run(program, args);
    let oracle_class = classify(&oracle);
    for (kind, workers, chunk, spec, runtime) in RUNTIMES.iter() {
        let outcome = runtime.run(program, args);
        let class = classify(&outcome);
        assert_eq!(
            class, oracle_class,
            "{label}: engine `{kind}` on {workers} workers (chunk {chunk}, spec {spec}) diverged: \
             {outcome:?} vs oracle {oracle:?}"
        );
        let (Ok(outcome), Ok(oracle)) = (&outcome, &oracle) else {
            continue;
        };
        match (&oracle.return_value, &outcome.return_value) {
            // Array identities may differ across engines; the arrays
            // themselves are compared below by name.
            (Some(Value::ArrayRef(_)), Some(Value::ArrayRef(_))) => {}
            (Some(a), Some(b)) => assert!(
                values_agree(a, b),
                "{label}: engine `{kind}` on {workers} workers (chunk {chunk}, spec {spec}) returned {b}, oracle {a}"
            ),
            (a, b) => assert_eq!(a, b, "{label}: `{kind}`/{workers}/c{chunk}/s{spec}: return presence"),
        }
        assert_eq!(
            oracle.arrays.len(),
            outcome.arrays.len(),
            "{label}: `{kind}`/{workers}/c{chunk}/s{spec}: array count"
        );
        for expected in &oracle.arrays {
            let got = outcome.array(&expected.name).unwrap_or_else(|| {
                panic!(
                    "{label}: `{kind}`/{workers}/c{chunk}/s{spec}: array `{}` missing",
                    expected.name
                )
            });
            assert_eq!(
                expected.shape, got.shape,
                "{label}: `{kind}`/{workers}/c{chunk}/s{spec}"
            );
            for (i, (a, b)) in expected.values.iter().zip(&got.values).enumerate() {
                assert!(
                    cells_agree(a, b),
                    "{label}: `{kind}`/{workers}/c{chunk}/s{spec}: `{}`[{i}] = {b:?}, oracle {a:?}",
                    expected.name
                );
            }
        }
    }
}

static ARITH: LazyLock<CompiledProgram> = LazyLock::new(|| {
    pods::compile(
        "def main(a, b) {
             s = a + b;
             d = a - b;
             p = a * b;
             m = if a < b then a else b;
             return ((s - d) + p) - m;
         }",
    )
    .unwrap()
});

static DIVREM: LazyLock<CompiledProgram> =
    LazyLock::new(|| pods::compile("def main(a, b) { return a / b + a % b; }").unwrap());

static UNARY: LazyLock<CompiledProgram> =
    LazyLock::new(|| pods::compile("def main(a) { return (0 - a) + abs(a); }").unwrap());

static FILL: LazyLock<CompiledProgram> = LazyLock::new(|| {
    pods::compile("def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i * 3; } return a; }")
        .unwrap()
});

static RF_ASC: LazyLock<CompiledProgram> = LazyLock::new(|| {
    pods::compile(
        "def main(lo, hi) { a = array(8); for i = lo to hi { a[i] = i + 40; } return 0; }",
    )
    .unwrap()
});

static RF_DESC: LazyLock<CompiledProgram> = LazyLock::new(|| {
    pods::compile(
        "def main(lo, hi) { a = array(8); for i = hi downto lo { a[i] = i * 2; } return 0; }",
    )
    .unwrap()
});

static RF_INNER: LazyLock<CompiledProgram> = LazyLock::new(|| {
    // The outer level carries a dependency (row i reads row i-1), so the
    // *inner* level is the distributed one: its Range Filter runs at dim 1
    // and consults the fuzzed outer row — including rows past the matrix.
    pods::compile(
        "def main(n, m) {
             a = matrix(4, 4);
             for j = 0 to 3 { a[0, j] = j * 2; }
             for i = 1 to n { for j = 0 to m { a[i, j] = a[i - 1, j] + 1; } }
             return 0;
         }",
    )
    .unwrap()
});

static BITS: LazyLock<CompiledProgram> = LazyLock::new(|| {
    pods::compile(
        "def main(x) {
             a = array(3);
             a[0] = x;
             a[1] = x * 1.0;
             a[2] = x + 0.0;
             return a;
         }",
    )
    .unwrap()
});

/// Exhaustive (not sampled) sweep of every edge-value pair through the
/// division template: the pairs that matter most — `i64::MIN / -1`,
/// division by `0`, by `-0.0`, by NaN — must not depend on sampler luck.
#[test]
fn division_edge_pairs_exhaustive() {
    for a in EDGES {
        for b in EDGES {
            assert_all_engines_agree(&format!("divrem!({a}, {b})"), &DIVREM, &[*a, *b]);
        }
    }
}

proptest! {
    /// Wrapping arithmetic, mixed promotion, NaN comparisons: identical
    /// results (to the bit) or identical error classes on all engines.
    #[test]
    fn arithmetic_agrees_on_edge_operands(ai in 0usize..EDGES.len(), bi in 0usize..EDGES.len()) {
        let args = [EDGES[ai], EDGES[bi]];
        assert_all_engines_agree(&format!("arith({}, {})", args[0], args[1]), &ARITH, &args);
    }

    /// Division by and near zero — including `i64::MIN / -1`, which used to
    /// panic the executing worker thread and poison the whole pool.
    #[test]
    fn division_agrees_on_edge_operands(ai in 0usize..EDGES.len(), bi in 0usize..EDGES.len()) {
        let args = [EDGES[ai], EDGES[bi]];
        assert_all_engines_agree(&format!("divrem({}, {})", args[0], args[1]), &DIVREM, &args);
    }

    /// Negation / absolute value on extremes (wrapping at `i64::MIN`).
    #[test]
    fn unary_agrees_on_edge_operands(ai in 0usize..EDGES.len()) {
        let args = [EDGES[ai]];
        assert_all_engines_agree(&format!("unary({})", args[0]), &UNARY, &args);
    }

    /// Zero, negative, and non-integer array dimensions, and normal fills.
    #[test]
    fn allocation_agrees_on_edge_sizes(n in -4i64..20) {
        assert_all_engines_agree(&format!("fill({n})"), &FILL, &[Value::Int(n)]);
    }

    /// Negative, empty, reversed, and out-of-range bounds through the
    /// Range Filters of a distributed ascending loop: the filter must
    /// partition the source range (out-of-range iterations fault like the
    /// oracle) and never truncate it.
    #[test]
    fn range_filter_bounds_agree_ascending(lo in -4i64..12, hi in -4i64..12) {
        assert_all_engines_agree(
            &format!("rf_asc({lo}, {hi})"),
            &RF_ASC,
            &[Value::Int(lo), Value::Int(hi)],
        );
    }

    /// The same bounds sweep for a descending (`downto`) loop, whose Range
    /// Filters swap roles (the initial bound goes through RangeHi).
    #[test]
    fn range_filter_bounds_agree_descending(lo in -4i64..12, hi in -4i64..12) {
        assert_all_engines_agree(
            &format!("rf_desc({lo}, {hi})"),
            &RF_DESC,
            &[Value::Int(lo), Value::Int(hi)],
        );
    }

    /// Inner-dimension Range Filters (dim 1, consulting the outer row):
    /// out-of-range *rows* and out-of-range *column* bounds must both
    /// fault like the oracle — an invalid row has no owning PE, so its
    /// iteration space is handed whole to one edge PE instead of being
    /// silently clamped to empty everywhere.
    #[test]
    fn inner_range_filter_bounds_agree(n in -2i64..7, m in -2i64..7) {
        assert_all_engines_agree(
            &format!("rf_inner({n}, {m})"),
            &RF_INNER,
            &[Value::Int(n), Value::Int(m)],
        );
    }

    /// Float payloads — NaN, ±inf, −0.0 — stored through the I-structure
    /// and read back: bit-identical on every engine.
    #[test]
    fn float_bit_patterns_survive_every_store_path(xi in 0usize..EDGES.len()) {
        let args = [EDGES[xi]];
        assert_all_engines_agree(&format!("bits({})", args[0]), &BITS, &args);
    }
}
