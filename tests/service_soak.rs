//! Soak test of the job-service subsystem: thousands of mixed
//! prepared/raw jobs from many client threads against a bounded admission
//! queue, checking the service's four contract points under sustained
//! load —
//!
//! 1. the queue depth never exceeds the admission capacity,
//! 2. per-client weighted fairness holds within a generous band,
//! 3. deadlines fire as `DeadlineExceeded`, never as hangs,
//! 4. every submission is accounted for at drain
//!    (`submitted == completed + rejected + cancelled`) and drop-on-drain
//!    is clean.
//!
//! Scale: the default run is sized for CI (a few hundred jobs). Set
//! `PODS_SOAK_SCALE=<n>` to multiply the job counts for longer soaks
//! (e.g. `PODS_SOAK_SCALE=10` for a thousands-of-jobs run). Set
//! `PODS_ENGINE=native|async` to pick the pooled scheduler under test
//! (default native; modelled engine names fall back to native, since only
//! pooled runtimes have a service layer).

use pods::{ClientId, EngineKind, PodsError, Runtime, Value};
use std::time::Duration;

/// Job-count multiplier from `PODS_SOAK_SCALE` (default 1).
fn scale() -> usize {
    std::env::var("PODS_SOAK_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// The pooled engine under test, from `PODS_ENGINE`.
fn engine_under_test() -> EngineKind {
    match std::env::var("PODS_ENGINE") {
        Ok(name) => {
            let kind: EngineKind = name.parse().unwrap_or_else(|e| panic!("PODS_ENGINE: {e}"));
            if kind.is_pooled() {
                kind
            } else {
                EngineKind::Native
            }
        }
        Err(_) => EngineKind::Native,
    }
}

#[test]
fn weighted_clients_share_a_saturated_runtime_fairly() {
    // A weight-2 and a weight-1 client each park a deep backlog behind a
    // blocker that occupies the single dispatch slot, so both lanes are
    // saturated when dispatching starts. Mid-drain, deficit round robin
    // must keep each client's completion share within 2x of its fair share
    // (heavy 2/3, light 1/3) — and the books must balance at full drain.
    let per_client = 60 * scale() as u64;
    let heavy = ClientId(1);
    let light = ClientId(2);
    let program =
        pods::compile("def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i; } return a; }")
            .unwrap();
    let blocker_program = pods::compile(
        "def main(n) {
             a = matrix(n, n);
             for i = 0 to n - 1 {
                 for j = 0 to n - 1 { a[i, j] = i * n + j; }
             }
             return a;
         }",
    )
    .unwrap();
    let runtime = Runtime::builder(engine_under_test())
        .workers(2)
        .dispatch_window(1)
        .client_weight(heavy, 2)
        .client_weight(light, 1)
        .build();
    let prepared = runtime.prepare(&program);

    // Occupy the one dispatch slot so both backlogs queue up completely
    // before the dispatcher starts serving them.
    let blocker = runtime.submit(&blocker_program, &[Value::Int(48)]).unwrap();
    let handles: Vec<_> = std::thread::scope(|scope| {
        let workers: Vec<_> = [heavy, light]
            .into_iter()
            .map(|client| {
                let (runtime, prepared, program) = (&runtime, &prepared, &program);
                scope.spawn(move || {
                    (0..per_client)
                        .map(|i| {
                            // Mixed submission forms: prepared mostly, raw
                            // (LRU-cached) every eighth job.
                            if i % 8 == 0 {
                                runtime.submit_for(client, program, &[Value::Int(16)])
                            } else {
                                runtime.submit_for(client, prepared, &[Value::Int(16)])
                            }
                            .expect("unbounded submit never rejects")
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("submitter panicked"))
            .collect()
    });
    assert!(blocker.wait().is_ok());

    // Sample mid-drain: once at least half the backlog completed, each
    // client's share must sit within 2x of its weighted fair share.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let m = runtime.metrics();
        // Ignore the blocker (completed, anonymous) via per-client counts.
        let h = m.completed_for(heavy);
        let l = m.completed_for(light);
        let done = h + l;
        if done >= per_client {
            let heavy_share = h as f64 / done as f64;
            let light_share = l as f64 / done as f64;
            assert!(
                (1.0 / 3.0..=(2.0 / 3.0) * 2.0).contains(&heavy_share),
                "heavy share {heavy_share:.2} outside 2x band of 2/3 \
                 ({h} heavy vs {l} light)"
            );
            assert!(
                (1.0 / 6.0..=(1.0 / 3.0) * 2.0).contains(&light_share),
                "light share {light_share:.2} outside 2x band of 1/3 \
                 ({h} heavy vs {l} light)"
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "backlog never reached half-drained: {m:?}"
        );
        std::thread::yield_now();
    }

    for handle in handles {
        assert!(handle.wait().is_ok());
    }
    let m = runtime.metrics();
    assert_eq!(m.submitted, 2 * per_client + 1);
    assert_eq!(
        m.completed,
        2 * per_client + 1,
        "nothing lost, nothing extra"
    );
    assert_eq!(m.rejected + m.cancelled, 0);
    assert_eq!(m.submitted, m.completed + m.rejected + m.cancelled);
    assert_eq!(m.completed_for(heavy), per_client);
    assert_eq!(m.completed_for(light), per_client);
    assert!(m.queue_depth == 0 && m.in_flight == 0, "drained: {m:?}");
    assert!(m.jobs_per_sec > 0.0);
    assert!(m.p99_latency_us >= m.p50_latency_us);
}

#[test]
fn bounded_queue_backpressure_accounts_for_every_submission() {
    // Many producer threads race mixed blocking / bounded-wait /
    // non-blocking submissions into a capacity-8 queue behind a single
    // dispatch slot. The queue depth must never exceed the capacity, no
    // handle may be lost, and at drain every submission is exactly one of
    // completed / rejected / cancelled.
    const CAPACITY: usize = 8;
    const THREADS: u64 = 4;
    let per_thread = 40 * scale() as u64;
    let program = pods::compile(
        "def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i * 2; } return a; }",
    )
    .unwrap();
    let runtime = Runtime::builder(engine_under_test())
        .workers(2)
        .dispatch_window(1)
        .admission_capacity(CAPACITY)
        .build();
    let prepared = runtime.prepare(&program);

    let (outcomes, rejected): (u64, u64) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let (runtime, prepared) = (&runtime, &prepared);
                scope.spawn(move || {
                    let client = ClientId(t + 1);
                    let mut handles = Vec::new();
                    let mut rejected = 0u64;
                    for i in 0..per_thread {
                        let result = match i % 3 {
                            0 => runtime.submit_for(client, prepared, &[Value::Int(24)]),
                            1 => runtime.submit_timeout_for(
                                client,
                                prepared,
                                &[Value::Int(24)],
                                Duration::from_millis((i % 5) * 2),
                            ),
                            _ => runtime.try_submit_for(client, prepared, &[Value::Int(24)]),
                        };
                        match result {
                            Ok(handle) => handles.push(handle),
                            Err(PodsError::QueueFull { capacity, depth }) => {
                                assert_eq!(capacity, CAPACITY);
                                assert!(depth <= CAPACITY, "overfull queue reported");
                                rejected += 1;
                            }
                            Err(e) => panic!("unexpected submit error: {e}"),
                        }
                        // Drain a little as we go so blocking submits make
                        // progress even at heavy oversubscription.
                        if handles.len() >= 24 {
                            assert!(handles.remove(0).wait().is_ok());
                        }
                    }
                    let kept = handles.len() as u64;
                    for handle in handles {
                        assert!(handle.wait().is_ok());
                    }
                    (per_thread - rejected - kept, rejected, kept)
                })
            })
            .collect();
        let mut completed_early = 0;
        let mut rejected = 0;
        let mut kept = 0;
        for w in workers {
            let (c, r, k) = w.join().expect("producer thread panicked");
            completed_early += c;
            rejected += r;
            kept += k;
        }
        (completed_early + kept, rejected)
    });

    let m = runtime.metrics();
    assert_eq!(m.submitted, THREADS * per_thread);
    assert_eq!(m.completed, outcomes, "every kept handle completed");
    assert_eq!(m.rejected, rejected, "every QueueFull was counted");
    assert_eq!(m.cancelled, 0);
    assert_eq!(m.submitted, m.completed + m.rejected + m.cancelled);
    assert!(
        m.queue_depth_peak <= CAPACITY,
        "queue depth {} exceeded capacity {CAPACITY}",
        m.queue_depth_peak
    );
    assert!(m.queue_depth == 0 && m.in_flight == 0, "drained: {m:?}");
}

#[test]
fn deadlines_fire_as_deadline_exceeded_not_hangs() {
    // Slow jobs behind a single dispatch slot under a tight deadline: at
    // least the tail of the burst must be cut short, every waiter must
    // resolve promptly, and cut-short jobs must report the typed
    // `DeadlineExceeded` error (queued and in-flight expiry paths both).
    // The backlog must stay deep enough that its tail overshoots the
    // deadline even with specialized (register-chained) execution, which
    // drains jobs several times faster than the interpreter this test was
    // originally tuned against.
    let jobs = 96 * scale() as i64;
    let deadline = Duration::from_millis(5);
    let program = pods::compile(
        "def main(n) {
             a = matrix(n, n);
             for i = 0 to n - 1 {
                 for j = 0 to n - 1 { a[i, j] = i * n + j; }
             }
             return a;
         }",
    )
    .unwrap();
    let runtime = Runtime::builder(engine_under_test())
        .workers(2)
        .dispatch_window(1)
        .deadline(deadline)
        .build();
    let prepared = runtime.prepare(&program);
    let handles: Vec<_> = (0..jobs)
        .map(|_| runtime.submit(&prepared, &[Value::Int(48)]).unwrap())
        .collect();

    let mut expired = 0u64;
    for (i, handle) in handles.into_iter().enumerate() {
        match handle.wait() {
            Ok(outcome) => assert!(
                outcome.returned_array().unwrap().is_complete(),
                "job {i} completed with holes"
            ),
            Err(PodsError::DeadlineExceeded { deadline: d, .. }) => {
                assert_eq!(d, deadline, "error must carry the configured deadline");
                expired += 1;
            }
            Err(e) => panic!("job {i}: expected DeadlineExceeded, got {e}"),
        }
    }
    assert!(
        expired >= 1,
        "a {jobs}-deep backlog of ~matrix(48) jobs behind one slot must \
         blow a {deadline:?} deadline at least once"
    );
    let m = runtime.metrics();
    assert_eq!(m.cancelled, expired);
    assert_eq!(m.submitted, m.completed + m.rejected + m.cancelled);
    assert!(m.queue_depth == 0 && m.in_flight == 0, "drained: {m:?}");
}

#[test]
fn dropping_a_loaded_runtime_drains_cleanly() {
    // Drop the runtime with a deep backlog: the drop returns promptly, the
    // tail reports cancellation (never hangs), and the service books
    // balance at teardown.
    let jobs = 24 * scale();
    let program = pods::compile(
        "def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i + 1; } return a; }",
    )
    .unwrap();
    let runtime = Runtime::builder(engine_under_test())
        .workers(2)
        .dispatch_window(1)
        .build();
    let prepared = runtime.prepare(&program);
    let handles: Vec<_> = (0..jobs)
        .map(|_| runtime.submit(&prepared, &[Value::Int(64)]).unwrap())
        .collect();
    let metrics = runtime.metrics();
    assert_eq!(metrics.submitted, jobs as u64);
    drop(runtime);
    let mut cancelled = 0usize;
    for (i, handle) in handles.into_iter().enumerate() {
        match handle.wait() {
            Ok(outcome) => assert!(
                outcome.returned_array().unwrap().is_complete(),
                "job {i} completed with holes"
            ),
            Err(e) => {
                assert!(
                    e.to_string().contains("cancelled"),
                    "job {i}: unexpected error {e}"
                );
                cancelled += 1;
            }
        }
    }
    assert!(
        cancelled >= 1,
        "dropping with a {jobs}-job backlog must cancel the tail"
    );
}
