//! Integration tests of the persistent `pods::Runtime` API: pool reuse
//! across sequential runs, concurrent batched submission, many OS threads
//! sharing one runtime, job-scoped failures, and the amortisation win of a
//! warm pool over cold `run_on` calls.

use pods::{
    CompiledProgram, EngineKind, EngineOutcome, EngineStats, NativeStats, RunOptions, Runtime,
    Value,
};

fn native_stats(outcome: &EngineOutcome) -> NativeStats {
    match &outcome.stats {
        EngineStats::Native { stats, .. } => *stats,
        other => panic!("expected native stats, got {other:?}"),
    }
}

fn values_close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 || (a.is_nan() && b.is_nan())
}

/// Full-state agreement between one outcome and the sequential oracle.
fn assert_matches_oracle(label: &str, outcome: &EngineOutcome, oracle: &EngineOutcome) {
    match (&oracle.return_value, &outcome.return_value) {
        (Some(Value::ArrayRef(_)), Some(Value::ArrayRef(_))) => {
            let a = oracle.returned_array().expect("oracle returned array");
            let b = outcome.returned_array().expect("engine returned array");
            assert_eq!(a.name, b.name, "{label}: returned array identity");
        }
        (a, b) => assert_eq!(a, b, "{label}: return value"),
    }
    assert_eq!(
        oracle.arrays.len(),
        outcome.arrays.len(),
        "{label}: array count"
    );
    for expected in &oracle.arrays {
        let got = outcome
            .array(&expected.name)
            .unwrap_or_else(|| panic!("{label}: array `{}` missing", expected.name));
        assert_eq!(
            expected.shape, got.shape,
            "{label}: shape of `{}`",
            expected.name
        );
        let ev = expected.to_f64(f64::NAN);
        let gv = got.to_f64(f64::NAN);
        for (i, (a, b)) in ev.iter().zip(&gv).enumerate() {
            assert!(
                values_close(*a, *b),
                "{label}: `{}`[{i}] = {b}, oracle {a}",
                expected.name
            );
        }
    }
}

fn oracle_for(program: &CompiledProgram, args: &[Value]) -> EngineOutcome {
    Runtime::with_options(EngineKind::Seq, RunOptions::default())
        .run(program, args)
        .expect("oracle run")
}

#[test]
fn two_sequential_runs_reuse_the_same_worker_pool() {
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
    let first = runtime.run(&program, &[Value::Int(16)]).unwrap();
    let second = runtime.run(&program, &[Value::Int(16)]).unwrap();
    let (s1, s2) = (native_stats(&first), native_stats(&second));
    // Same pool identity on both runs, and it is this runtime's pool.
    assert_eq!(
        s1.pool_id,
        runtime.pool_id().expect("native runtime owns a pool")
    );
    assert_eq!(s1.pool_id, s2.pool_id, "worker pool was not reused");
    assert_eq!(
        (s1.job_seq, s2.job_seq),
        (1, 2),
        "jobs must be sequenced on one pool"
    );

    // Cold runs, by contrast, get a fresh pool each time.
    let cold1 = program
        .run_on("native", &[Value::Int(16)], &RunOptions::with_pes(2))
        .unwrap();
    let cold2 = program
        .run_on("native", &[Value::Int(16)], &RunOptions::with_pes(2))
        .unwrap();
    let (c1, c2) = (native_stats(&cold1), native_stats(&cold2));
    assert_ne!(
        c1.pool_id, c2.pool_id,
        "cold run_on calls must not share a pool"
    );
    assert_ne!(c1.pool_id, s1.pool_id);
    assert_eq!((c1.job_seq, c2.job_seq), (1, 1));
}

#[test]
fn concurrent_run_many_jobs_match_the_oracle() {
    // Heterogeneous batch: different programs and argument sets in flight
    // on one pool at once, each checked against the sequential oracle.
    let workloads: Vec<(&str, Vec<Value>)> = vec![
        (pods_workloads::FILL, vec![Value::Int(12)]),
        (pods_workloads::MATMUL, vec![Value::Int(5)]),
        (pods_workloads::STENCIL, vec![Value::Int(10)]),
        (pods_workloads::RECURRENCE, vec![Value::Int(32)]),
        (pods_workloads::FILL, vec![Value::Int(20)]),
    ];
    let programs: Vec<CompiledProgram> = workloads
        .iter()
        .map(|(src, _)| pods::compile(src).unwrap())
        .collect();
    let oracles: Vec<EngineOutcome> = programs
        .iter()
        .zip(&workloads)
        .map(|(p, (_, args))| oracle_for(p, args))
        .collect();

    let runtime = Runtime::builder(EngineKind::Native).workers(4).build();
    let jobs: Vec<(&CompiledProgram, &[Value])> = programs
        .iter()
        .zip(&workloads)
        .map(|(p, (_, args))| (p, args.as_slice()))
        .collect();
    let results = runtime.run_many(&jobs);
    assert_eq!(results.len(), oracles.len());
    let pool_id = runtime.pool_id().unwrap();
    for (i, (result, oracle)) in results.iter().zip(&oracles).enumerate() {
        let outcome = result
            .as_ref()
            .unwrap_or_else(|e| panic!("job {i} failed: {e}"));
        assert_matches_oracle(&format!("job {i}"), outcome, oracle);
        assert_eq!(
            native_stats(outcome).pool_id,
            pool_id,
            "job {i} ran off-pool"
        );
    }
}

#[test]
fn many_os_threads_share_one_runtime_concurrently() {
    // The stress test of the issue: many submitting threads, one shared
    // Runtime, every result identical to the sequential oracle.
    const THREADS: usize = 8;
    const RUNS_PER_THREAD: usize = 4;
    let fill = pods::compile(pods_workloads::FILL).unwrap();
    let recurrence = pods::compile(pods_workloads::RECURRENCE).unwrap();

    // Precompute one oracle per distinct (program, n) the threads will use.
    let fill_oracles: Vec<EngineOutcome> = (0..RUNS_PER_THREAD)
        .map(|k| oracle_for(&fill, &[Value::Int(8 + 2 * k as i64)]))
        .collect();
    let rec_oracles: Vec<EngineOutcome> = (0..RUNS_PER_THREAD)
        .map(|k| oracle_for(&recurrence, &[Value::Int(16 + 4 * k as i64)]))
        .collect();

    let runtime = Runtime::builder(EngineKind::Native).workers(4).build();
    let pool_id = runtime.pool_id().unwrap();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let runtime = &runtime;
            let (fill, recurrence) = (&fill, &recurrence);
            let (fill_oracles, rec_oracles) = (&fill_oracles, &rec_oracles);
            scope.spawn(move || {
                for k in 0..RUNS_PER_THREAD {
                    let (program, args, oracle) = if t % 2 == 0 {
                        (fill, vec![Value::Int(8 + 2 * k as i64)], &fill_oracles[k])
                    } else {
                        (
                            recurrence,
                            vec![Value::Int(16 + 4 * k as i64)],
                            &rec_oracles[k],
                        )
                    };
                    let outcome = runtime
                        .run(program, &args)
                        .unwrap_or_else(|e| panic!("thread {t} run {k} failed: {e}"));
                    assert_matches_oracle(&format!("thread {t} run {k}"), &outcome, oracle);
                    assert_eq!(native_stats(&outcome).pool_id, pool_id);
                }
            });
        }
    });
    // Every submission was sequenced on the one pool.
    let last = runtime.run(&fill, &[Value::Int(8)]).unwrap();
    assert_eq!(
        native_stats(&last).job_seq,
        (THREADS * RUNS_PER_THREAD) as u64 + 1
    );
}

#[test]
fn failures_are_job_scoped_and_do_not_poison_the_pool() {
    let deadlock = pods::compile("def main(n) { a = array(n); a[0] = 1; return a[1]; }").unwrap();
    let good = pods::compile(pods_workloads::FILL).unwrap();
    let oracle = oracle_for(&good, &[Value::Int(12)]);

    let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
    // Interleave failing and succeeding submissions.
    let bad_handle = runtime.submit(&deadlock, &[Value::Int(4)]).unwrap();
    let good_handle = runtime.submit(&good, &[Value::Int(12)]).unwrap();
    assert!(bad_handle.wait().is_err(), "deadlock must be reported");
    let outcome = good_handle.wait().unwrap();
    assert_matches_oracle("good job next to failing job", &outcome, &oracle);

    // The pool keeps serving after failures.
    for _ in 0..3 {
        assert!(runtime.run(&deadlock, &[Value::Int(4)]).is_err());
    }
    let after = runtime.run(&good, &[Value::Int(12)]).unwrap();
    assert_matches_oracle("after repeated failures", &after, &oracle);
}

#[test]
fn warm_runtime_amortises_pool_spawn_over_cold_run_on() {
    // N back-to-back runs on one Runtime vs N cold run_on calls (each of
    // which spawns and joins a fresh pool). On a single-core or co-tenanted
    // host this is reported but not asserted, mirroring the PR 1 speed-up
    // test; from 2 cores up the warm path must at least not lose by more
    // than scheduler noise.
    const RUNS: usize = 6;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let args = [Value::Int(48)];
    let workers = cores.clamp(2, 4);

    let warm = || -> f64 {
        let runtime = Runtime::builder(EngineKind::Native)
            .workers(workers)
            .build();
        let start = std::time::Instant::now();
        for _ in 0..RUNS {
            runtime.run(&program, &args).unwrap();
        }
        start.elapsed().as_secs_f64() * 1e6
    };
    let cold = || -> f64 {
        let start = std::time::Instant::now();
        for _ in 0..RUNS {
            program
                .run_on("native", &args, &RunOptions::with_pes(workers))
                .unwrap();
        }
        start.elapsed().as_secs_f64() * 1e6
    };
    // Best of three batches each, interleaved to be fair to both sides.
    let mut warm_best = f64::MAX;
    let mut cold_best = f64::MAX;
    for _ in 0..3 {
        warm_best = warm_best.min(warm());
        cold_best = cold_best.min(cold());
    }
    eprintln!(
        "{RUNS} runs on {workers} workers ({cores}-core host): \
         warm runtime {warm_best:.0} us, cold run_on {cold_best:.0} us \
         ({:.2}x)",
        cold_best / warm_best
    );
    if cores < 2 || std::env::var("PODS_SKIP_SPEEDUP_ASSERT").is_ok() {
        return;
    }
    assert!(
        warm_best <= cold_best * 1.25,
        "reusing the pool should not be slower than cold pools: \
         warm {warm_best:.0} us vs cold {cold_best:.0} us. \
         On a co-tenanted machine set PODS_SKIP_SPEEDUP_ASSERT=1."
    );
}

#[test]
fn dropping_a_runtime_cancels_nothing_already_collected() {
    // Handles waited before the drop see their results; the drop itself
    // must not hang even with completed jobs behind it.
    let program = pods::compile("def main(n) { return n * 2; }").unwrap();
    let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
    let handle = runtime.submit(&program, &[Value::Int(21)]).unwrap();
    assert_eq!(handle.wait().unwrap().return_value, Some(Value::Int(42)));
    drop(runtime);
}

#[test]
fn dropping_a_runtime_cancels_outstanding_jobs_instead_of_hanging() {
    // Submit a deep backlog and drop the runtime immediately: the drop must
    // return promptly (not run the whole backlog), every handle must
    // resolve (no hung waiters), and the backlog must not have been
    // silently executed to completion — the tail gets cancellation errors.
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
    let args = [Value::Int(64)];
    let handles: Vec<_> = (0..20)
        .map(|_| runtime.submit(&program, &args).unwrap())
        .collect();
    drop(runtime);
    let results: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
    let cancelled = results.iter().filter(|r| r.is_err()).count();
    assert!(
        cancelled >= 1,
        "dropping with a 20-job backlog must cancel the tail, \
         but all jobs ran to completion"
    );
    for r in results.into_iter().flatten() {
        // Jobs that did complete before the teardown are intact.
        assert!(r.returned_array().unwrap().is_complete());
    }
}
