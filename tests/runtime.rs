//! Integration tests of the persistent `pods::Runtime` API: pool reuse
//! across sequential runs, concurrent batched submission, many OS threads
//! sharing one runtime, job-scoped failures, and the amortisation win of a
//! warm pool over cold `run_on` calls.

use pods::{
    AsyncStats, CompiledProgram, EngineKind, EngineOutcome, EngineStats, NativeStats,
    PartitionConfig, RunOptions, Runtime, Value,
};

fn native_stats(outcome: &EngineOutcome) -> NativeStats {
    match &outcome.stats {
        EngineStats::Native { stats, .. } => *stats,
        other => panic!("expected native stats, got {other:?}"),
    }
}

fn async_stats(outcome: &EngineOutcome) -> AsyncStats {
    match &outcome.stats {
        EngineStats::AsyncCoop { stats, .. } => *stats,
        other => panic!("expected async stats, got {other:?}"),
    }
}

fn values_close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 || (a.is_nan() && b.is_nan())
}

/// Full-state agreement between one outcome and the sequential oracle.
fn assert_matches_oracle(label: &str, outcome: &EngineOutcome, oracle: &EngineOutcome) {
    match (&oracle.return_value, &outcome.return_value) {
        (Some(Value::ArrayRef(_)), Some(Value::ArrayRef(_))) => {
            let a = oracle.returned_array().expect("oracle returned array");
            let b = outcome.returned_array().expect("engine returned array");
            assert_eq!(a.name, b.name, "{label}: returned array identity");
        }
        (a, b) => assert_eq!(a, b, "{label}: return value"),
    }
    assert_eq!(
        oracle.arrays.len(),
        outcome.arrays.len(),
        "{label}: array count"
    );
    for expected in &oracle.arrays {
        let got = outcome
            .array(&expected.name)
            .unwrap_or_else(|| panic!("{label}: array `{}` missing", expected.name));
        assert_eq!(
            expected.shape, got.shape,
            "{label}: shape of `{}`",
            expected.name
        );
        let ev = expected.to_f64(f64::NAN);
        let gv = got.to_f64(f64::NAN);
        for (i, (a, b)) in ev.iter().zip(&gv).enumerate() {
            assert!(
                values_close(*a, *b),
                "{label}: `{}`[{i}] = {b}, oracle {a}",
                expected.name
            );
        }
    }
}

fn oracle_for(program: &CompiledProgram, args: &[Value]) -> EngineOutcome {
    Runtime::with_options(EngineKind::Seq, RunOptions::default())
        .run(program, args)
        .expect("oracle run")
}

#[test]
fn two_sequential_runs_reuse_the_same_worker_pool() {
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
    let first = runtime.run(&program, &[Value::Int(16)]).unwrap();
    let second = runtime.run(&program, &[Value::Int(16)]).unwrap();
    let (s1, s2) = (native_stats(&first), native_stats(&second));
    // Same pool identity on both runs, and it is this runtime's pool.
    assert_eq!(
        s1.pool_id,
        runtime.pool_id().expect("native runtime owns a pool")
    );
    assert_eq!(s1.pool_id, s2.pool_id, "worker pool was not reused");
    assert_eq!(
        (s1.job_seq, s2.job_seq),
        (1, 2),
        "jobs must be sequenced on one pool"
    );

    // Cold runs, by contrast, get a fresh pool each time.
    let cold1 = program
        .run_on("native", &[Value::Int(16)], &RunOptions::with_pes(2))
        .unwrap();
    let cold2 = program
        .run_on("native", &[Value::Int(16)], &RunOptions::with_pes(2))
        .unwrap();
    let (c1, c2) = (native_stats(&cold1), native_stats(&cold2));
    assert_ne!(
        c1.pool_id, c2.pool_id,
        "cold run_on calls must not share a pool"
    );
    assert_ne!(c1.pool_id, s1.pool_id);
    assert_eq!((c1.job_seq, c2.job_seq), (1, 1));
}

#[test]
fn concurrent_run_many_jobs_match_the_oracle() {
    // Heterogeneous batch: different programs and argument sets in flight
    // on one pool at once, each checked against the sequential oracle.
    let workloads: Vec<(&str, Vec<Value>)> = vec![
        (pods_workloads::FILL, vec![Value::Int(12)]),
        (pods_workloads::MATMUL, vec![Value::Int(5)]),
        (pods_workloads::STENCIL, vec![Value::Int(10)]),
        (pods_workloads::RECURRENCE, vec![Value::Int(32)]),
        (pods_workloads::FILL, vec![Value::Int(20)]),
    ];
    let programs: Vec<CompiledProgram> = workloads
        .iter()
        .map(|(src, _)| pods::compile(src).unwrap())
        .collect();
    let oracles: Vec<EngineOutcome> = programs
        .iter()
        .zip(&workloads)
        .map(|(p, (_, args))| oracle_for(p, args))
        .collect();

    let runtime = Runtime::builder(EngineKind::Native).workers(4).build();
    let jobs: Vec<(&CompiledProgram, &[Value])> = programs
        .iter()
        .zip(&workloads)
        .map(|(p, (_, args))| (p, args.as_slice()))
        .collect();
    let results = runtime.run_many(&jobs);
    assert_eq!(results.len(), oracles.len());
    let pool_id = runtime.pool_id().unwrap();
    for (i, (result, oracle)) in results.iter().zip(&oracles).enumerate() {
        let outcome = result
            .as_ref()
            .unwrap_or_else(|e| panic!("job {i} failed: {e}"));
        assert_matches_oracle(&format!("job {i}"), outcome, oracle);
        assert_eq!(
            native_stats(outcome).pool_id,
            pool_id,
            "job {i} ran off-pool"
        );
    }
}

#[test]
fn many_os_threads_share_one_runtime_concurrently() {
    // The stress test of the issue: many submitting threads, one shared
    // Runtime, every result identical to the sequential oracle.
    const THREADS: usize = 8;
    const RUNS_PER_THREAD: usize = 4;
    let fill = pods::compile(pods_workloads::FILL).unwrap();
    let recurrence = pods::compile(pods_workloads::RECURRENCE).unwrap();

    // Precompute one oracle per distinct (program, n) the threads will use.
    let fill_oracles: Vec<EngineOutcome> = (0..RUNS_PER_THREAD)
        .map(|k| oracle_for(&fill, &[Value::Int(8 + 2 * k as i64)]))
        .collect();
    let rec_oracles: Vec<EngineOutcome> = (0..RUNS_PER_THREAD)
        .map(|k| oracle_for(&recurrence, &[Value::Int(16 + 4 * k as i64)]))
        .collect();

    let runtime = Runtime::builder(EngineKind::Native).workers(4).build();
    let pool_id = runtime.pool_id().unwrap();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let runtime = &runtime;
            let (fill, recurrence) = (&fill, &recurrence);
            let (fill_oracles, rec_oracles) = (&fill_oracles, &rec_oracles);
            scope.spawn(move || {
                for k in 0..RUNS_PER_THREAD {
                    let (program, args, oracle) = if t % 2 == 0 {
                        (fill, vec![Value::Int(8 + 2 * k as i64)], &fill_oracles[k])
                    } else {
                        (
                            recurrence,
                            vec![Value::Int(16 + 4 * k as i64)],
                            &rec_oracles[k],
                        )
                    };
                    let outcome = runtime
                        .run(program, &args)
                        .unwrap_or_else(|e| panic!("thread {t} run {k} failed: {e}"));
                    assert_matches_oracle(&format!("thread {t} run {k}"), &outcome, oracle);
                    assert_eq!(native_stats(&outcome).pool_id, pool_id);
                }
            });
        }
    });
    // Every submission was sequenced on the one pool.
    let last = runtime.run(&fill, &[Value::Int(8)]).unwrap();
    assert_eq!(
        native_stats(&last).job_seq,
        (THREADS * RUNS_PER_THREAD) as u64 + 1
    );
}

#[test]
fn failures_are_job_scoped_and_do_not_poison_the_pool() {
    let deadlock = pods::compile("def main(n) { a = array(n); a[0] = 1; return a[1]; }").unwrap();
    let good = pods::compile(pods_workloads::FILL).unwrap();
    let oracle = oracle_for(&good, &[Value::Int(12)]);

    let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
    // Interleave failing and succeeding submissions.
    let bad_handle = runtime.submit(&deadlock, &[Value::Int(4)]).unwrap();
    let good_handle = runtime.submit(&good, &[Value::Int(12)]).unwrap();
    assert!(bad_handle.wait().is_err(), "deadlock must be reported");
    let outcome = good_handle.wait().unwrap();
    assert_matches_oracle("good job next to failing job", &outcome, &oracle);

    // The pool keeps serving after failures.
    for _ in 0..3 {
        assert!(runtime.run(&deadlock, &[Value::Int(4)]).is_err());
    }
    let after = runtime.run(&good, &[Value::Int(12)]).unwrap();
    assert_matches_oracle("after repeated failures", &after, &oracle);
}

#[test]
fn warm_runtime_amortises_pool_spawn_over_cold_run_on() {
    // N back-to-back runs on one Runtime vs N cold run_on calls (each of
    // which spawns and joins a fresh pool). On a single-core or co-tenanted
    // host this is reported but not asserted, mirroring the PR 1 speed-up
    // test; from 2 cores up the warm path must at least not lose by more
    // than scheduler noise.
    const RUNS: usize = 6;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let args = [Value::Int(48)];
    let workers = cores.clamp(2, 4);

    let warm = || -> f64 {
        let runtime = Runtime::builder(EngineKind::Native)
            .workers(workers)
            .build();
        let start = std::time::Instant::now();
        for _ in 0..RUNS {
            runtime.run(&program, &args).unwrap();
        }
        start.elapsed().as_secs_f64() * 1e6
    };
    let cold = || -> f64 {
        let start = std::time::Instant::now();
        for _ in 0..RUNS {
            program
                .run_on("native", &args, &RunOptions::with_pes(workers))
                .unwrap();
        }
        start.elapsed().as_secs_f64() * 1e6
    };
    // Best of three batches each, interleaved to be fair to both sides.
    let mut warm_best = f64::MAX;
    let mut cold_best = f64::MAX;
    for _ in 0..3 {
        warm_best = warm_best.min(warm());
        cold_best = cold_best.min(cold());
    }
    eprintln!(
        "{RUNS} runs on {workers} workers ({cores}-core host): \
         warm runtime {warm_best:.0} us, cold run_on {cold_best:.0} us \
         ({:.2}x)",
        cold_best / warm_best
    );
    if cores < 2 || std::env::var("PODS_SKIP_SPEEDUP_ASSERT").is_ok() {
        return;
    }
    assert!(
        warm_best <= cold_best * 1.25,
        "reusing the pool should not be slower than cold pools: \
         warm {warm_best:.0} us vs cold {cold_best:.0} us. \
         On a co-tenanted machine set PODS_SKIP_SPEEDUP_ASSERT=1."
    );
}

#[test]
fn one_prepared_handle_serves_run_run_many_and_many_threads() {
    // The same PreparedProgram handle through every submission path — and
    // every result identical to the sequential oracle.
    let program = pods::compile(pods_workloads::STENCIL).unwrap();
    let oracle12 = oracle_for(&program, &[Value::Int(12)]);
    let oracle16 = oracle_for(&program, &[Value::Int(16)]);
    let runtime = Runtime::builder(EngineKind::Native).workers(4).build();
    let prepared = runtime.prepare(&program);

    // run
    let outcome = runtime.run(&prepared, &[Value::Int(12)]).unwrap();
    assert_matches_oracle("prepared run", &outcome, &oracle12);

    // run_many (homogeneous prepared batch)
    let a12: &[Value] = &[Value::Int(12)];
    let a16: &[Value] = &[Value::Int(16)];
    let results = runtime.run_many(&[(&prepared, a12), (&prepared, a16), (&prepared, a12)]);
    for (i, (result, oracle)) in results
        .iter()
        .zip([&oracle12, &oracle16, &oracle12])
        .enumerate()
    {
        let outcome = result
            .as_ref()
            .unwrap_or_else(|e| panic!("prepared run_many job {i} failed: {e}"));
        assert_matches_oracle(&format!("prepared run_many job {i}"), outcome, oracle);
    }

    // many OS threads sharing one handle and one runtime
    std::thread::scope(|scope| {
        for t in 0..6 {
            let (runtime, prepared) = (&runtime, &prepared);
            let (oracle12, oracle16) = (&oracle12, &oracle16);
            scope.spawn(move || {
                for k in 0..3 {
                    let (args, oracle) = if (t + k) % 2 == 0 {
                        (a12, oracle12)
                    } else {
                        (a16, oracle16)
                    };
                    let outcome = runtime.run(prepared, args).unwrap();
                    assert_matches_oracle(&format!("thread {t} run {k}"), &outcome, oracle);
                }
            });
        }
    });
}

#[test]
fn prepared_handles_cross_runtimes_with_different_worker_counts() {
    // Partitioning is machine-size-independent, so a handle prepared on a
    // 1-worker runtime runs on 2- and 4-worker runtimes (and on modelled
    // runtimes), matching the oracle everywhere.
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let oracle = oracle_for(&program, &[Value::Int(16)]);
    let one = Runtime::builder(EngineKind::Native).workers(1).build();
    let prepared = one.prepare(&program);
    for workers in [2, 4] {
        let other = Runtime::builder(EngineKind::Native)
            .workers(workers)
            .build();
        let outcome = other.run(&prepared, &[Value::Int(16)]).unwrap();
        assert_matches_oracle(
            &format!("prepared on 1, run on {workers}"),
            &outcome,
            &oracle,
        );
    }
    let sim = Runtime::builder(EngineKind::Sim).workers(2).build();
    let outcome = sim.run(&prepared, &[Value::Int(16)]).unwrap();
    assert_matches_oracle("prepared handle on a sim runtime", &outcome, &oracle);
}

#[test]
fn prepared_handles_reject_mismatched_partition_configs() {
    // A handle prepared under the paper's partitioning must not silently
    // run on a runtime configured for sequential partitioning — that would
    // execute a differently-rewritten program than the runtime promises.
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let default_rt = Runtime::builder(EngineKind::Native).workers(2).build();
    let prepared = default_rt.prepare(&program);
    let sequential_rt = Runtime::builder(EngineKind::Native)
        .workers(2)
        .partition(PartitionConfig::sequential())
        .build();
    let err = sequential_rt
        .run(&prepared, &[Value::Int(8)])
        .expect_err("mismatched partition config must be rejected");
    assert!(
        matches!(err, pods::PodsError::PreparedMismatch),
        "unexpected error: {err:?}"
    );
    assert!(
        err.to_string().contains("partition"),
        "error must explain the mismatch: {err}"
    );
    // The sequential runtime still runs the raw program (it prepares its
    // own), and the default runtime still accepts its own handle.
    assert!(sequential_rt.run(&program, &[Value::Int(8)]).is_ok());
    assert!(default_rt.run(&prepared, &[Value::Int(8)]).is_ok());

    // The rejection is uniform across engines: a modelled runtime with a
    // mismatched partitioner config refuses the handle just like the
    // native runtime does, instead of silently running its own rewrite.
    let sim_sequential = Runtime::builder(EngineKind::Sim)
        .workers(2)
        .partition(PartitionConfig::sequential())
        .build();
    assert!(matches!(
        sim_sequential.run(&prepared, &[Value::Int(8)]),
        Err(pods::PodsError::PreparedMismatch)
    ));
}

#[test]
fn prepared_handles_reject_mismatched_chunk_grains() {
    // The chunk grain is part of the partitioning a handle was prepared
    // under: a handle chunked at grain 4 must not silently run on a
    // runtime that promises unchunked (or auto-tuned) instances, and vice
    // versa — the rewritten SP programs differ.
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let oracle = oracle_for(&program, &[Value::Int(16)]);
    let coarse = Runtime::builder(EngineKind::Native)
        .workers(2)
        .chunk_size(4)
        .build();
    let prepared = coarse.prepare(&program);

    let fine = Runtime::builder(EngineKind::Native).workers(2).build();
    let err = fine
        .run(&prepared, &[Value::Int(16)])
        .expect_err("mismatched chunk grain must be rejected");
    assert!(
        matches!(err, pods::PodsError::PreparedMismatch),
        "unexpected error: {err:?}"
    );
    let auto = Runtime::builder(EngineKind::Native)
        .workers(2)
        .chunk_policy(pods::ChunkPolicy::Auto)
        .build();
    assert!(matches!(
        auto.run(&prepared, &[Value::Int(16)]),
        Err(pods::PodsError::PreparedMismatch)
    ));

    // A *matching* grain is engine-portable: the same chunked handle runs
    // on native, sim, and async runtimes configured for grain 4, matching
    // the oracle everywhere.
    for kind in [EngineKind::Native, EngineKind::Sim, EngineKind::AsyncCoop] {
        let runtime = Runtime::builder(kind).workers(2).chunk_size(4).build();
        let outcome = runtime.run(&prepared, &[Value::Int(16)]).unwrap();
        assert_matches_oracle(
            &format!("chunked handle on {}", kind.name()),
            &outcome,
            &oracle,
        );
    }
}

#[test]
fn auto_grain_retunes_warm_reruns_from_first_run_stats() {
    // The adaptive half of ChunkPolicy::Auto: the first raw run under an
    // auto-grain pooled runtime executes at the template-derived grain and
    // feeds its instance count back into the prepared-program cache, so a
    // warm re-run of the same program executes at a coarser grain.
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let oracle = oracle_for(&program, &[Value::Int(64)]);
    let runtime = Runtime::builder(EngineKind::Native)
        .workers(2)
        .chunk_policy(pods::ChunkPolicy::Auto)
        .build();

    let first = runtime.run(&program, &[Value::Int(64)]).unwrap();
    assert_matches_oracle("auto grain, cold run", &first, &oracle);
    let s1 = native_stats(&first);
    assert_eq!(s1.chunks_autotuned, 0, "the cold run uses the seed grain");
    assert!(
        s1.iterations_per_instance() > 1.0,
        "fill's inner loop must actually be chunked: {:.2} iterations/instance",
        s1.iterations_per_instance()
    );

    let second = runtime.run(&program, &[Value::Int(64)]).unwrap();
    assert_matches_oracle("auto grain, warm run", &second, &oracle);
    let s2 = native_stats(&second);
    assert!(
        s2.chunks_autotuned >= 1,
        "the warm run must use a retuned preparation"
    );
    assert!(
        s2.instances < s1.instances,
        "retuning must coarsen the grain: {} instances warm vs {} cold",
        s2.instances,
        s1.instances
    );
    assert!(s2.iterations_per_instance() > s1.iterations_per_instance());

    // A handle prepared (and pinned) before the retune keeps its grain:
    // explicit preparation is stable, only the cache entry is retuned.
    let pinned = runtime.prepare(&program);
    assert!(pinned.chunks_autotuned() >= 1, "prepare follows the cache");
}

#[test]
fn retuned_cache_entries_rebuild_the_specialization_plan() {
    // Regression: the adaptive grain retune re-prepares the cached program
    // at a boosted grain; the re-prepare must run the specialization pass
    // again, so warm runs of the retuned entry still execute through
    // super-ops rather than silently dropping back to the interpreter.
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let oracle = oracle_for(&program, &[Value::Int(64)]);
    let runtime = Runtime::builder(EngineKind::Native)
        .workers(2)
        .chunk_policy(pods::ChunkPolicy::Auto)
        .specialize(true)
        .build();

    let first = runtime.run(&program, &[Value::Int(64)]).unwrap();
    assert!(
        native_stats(&first).super_ops > 0,
        "cold run fires super-ops"
    );

    let second = runtime.run(&program, &[Value::Int(64)]).unwrap();
    assert_matches_oracle("retuned warm run", &second, &oracle);
    let s2 = native_stats(&second);
    assert!(s2.chunks_autotuned >= 1, "the warm run must be retuned");
    assert!(
        s2.super_ops > 0,
        "the retuned preparation must carry a rebuilt plan"
    );

    // The retuned cache entry itself reports its plan.
    let pinned = runtime.prepare(&program);
    assert!(pinned.chunks_autotuned() >= 1);
    assert!(pinned.partition_report().super_ops > 0);
}

#[test]
fn specialization_is_part_of_prepared_identity() {
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let oracle = oracle_for(&program, &[Value::Int(16)]);
    let on = Runtime::builder(EngineKind::Native)
        .workers(2)
        .specialize(true)
        .build();
    let off = Runtime::builder(EngineKind::Native)
        .workers(2)
        .specialize(false)
        .build();

    let prepared_on = on.prepare(&program);
    assert!(prepared_on.partition_report().super_ops > 0);
    let prepared_off = off.prepare(&program);
    assert_eq!(prepared_off.partition_report().super_ops, 0);

    // Handles only run under the setting they were prepared with.
    assert!(matches!(
        off.run(&prepared_on, &[Value::Int(16)]),
        Err(pods::PodsError::PreparedMismatch)
    ));
    assert!(matches!(
        on.run(&prepared_off, &[Value::Int(16)]),
        Err(pods::PodsError::PreparedMismatch)
    ));

    // Under their own runtimes both match the oracle, and only the
    // specialized run dispatches super-ops.
    let out_on = on.run(&prepared_on, &[Value::Int(16)]).unwrap();
    assert_matches_oracle("specialized", &out_on, &oracle);
    assert!(native_stats(&out_on).super_ops > 0);
    let out_off = off.run(&prepared_off, &[Value::Int(16)]).unwrap();
    assert_matches_oracle("interpreted", &out_off, &oracle);
    assert_eq!(native_stats(&out_off).super_ops, 0);
}

#[test]
fn auto_grain_keeps_multi_worker_small_runs_competitive() {
    // The small-n scaling fix from the issue: at sizes where per-instance
    // overhead used to swamp the win of distribution, a multi-worker
    // runtime at auto grain must not lose to one worker at grain 1. The
    // wall-clock assertion needs real cores; below 4 the comparison is
    // reported but only correctness is checked.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let args = [Value::Int(24)];

    let best = |workers: usize, chunk: pods::ChunkPolicy| -> f64 {
        let runtime = Runtime::builder(EngineKind::Native)
            .workers(workers)
            .chunk_policy(chunk)
            .build();
        (0..7)
            .map(|_| runtime.run(&program, &args).unwrap().wall_us)
            .fold(f64::MAX, f64::min)
    };

    let sequential = best(1, pods::ChunkPolicy::Fixed(1));
    let chunked = best(4, pods::ChunkPolicy::Auto);
    eprintln!(
        "fill(24) on {cores}-core host: 1 worker/grain 1 {sequential:.0} us, \
         4 workers/auto grain {chunked:.0} us ({:.2}x)",
        sequential / chunked
    );
    if cores < 4 || std::env::var("PODS_SKIP_SPEEDUP_ASSERT").is_ok() {
        return;
    }
    assert!(
        chunked <= sequential * 1.25,
        "auto grain must keep 4 workers competitive at small n: \
         {chunked:.0} us vs {sequential:.0} us on 1 worker/grain 1. \
         On a co-tenanted machine set PODS_SKIP_SPEEDUP_ASSERT=1."
    );
}

#[test]
fn raw_submissions_share_one_cached_preparation() {
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
    assert_eq!(runtime.prepared_cache_size(), 0);
    runtime.run(&program, &[Value::Int(8)]).unwrap();
    assert_eq!(
        runtime.prepared_cache_size(),
        1,
        "a raw run must seed the cache"
    );
    // Repeat runs and explicit prepares all resolve to the same preparation.
    let p1 = runtime.prepare(&program);
    runtime.run(&program, &[Value::Int(12)]).unwrap();
    let p2 = runtime.prepare(&program);
    assert!(p1.same_preparation(&p2), "cache hit must share the Arc");
    assert_eq!(p1.fingerprint(), p2.fingerprint());
    assert_eq!(p1.identity(), program.identity());
    assert_eq!(runtime.prepared_cache_size(), 1);

    // A cache-disabled runtime re-prepares every time (the benchmark
    // control): fresh Arcs, identical fingerprints.
    let uncached = Runtime::builder(EngineKind::Native)
        .workers(2)
        .prepared_cache_capacity(0)
        .build();
    let u1 = uncached.prepare(&program);
    let u2 = uncached.prepare(&program);
    assert!(!u1.same_preparation(&u2));
    assert_eq!(u1.fingerprint(), u2.fingerprint());
    assert_eq!(uncached.prepared_cache_size(), 0);
}

#[test]
fn prepared_cache_evicts_least_recently_used() {
    let programs: Vec<CompiledProgram> = (0..4)
        .map(|k| pods::compile(&format!("def main(n) {{ return n + {k}; }}")).unwrap())
        .collect();
    let runtime = Runtime::builder(EngineKind::Native)
        .workers(1)
        .prepared_cache_capacity(2)
        .build();
    let first = runtime.prepare(&programs[0]);
    runtime.prepare(&programs[1]);
    // Touch program 0 so program 1 is the LRU victim when 2 arrives.
    let hit = runtime.prepare(&programs[0]);
    assert!(first.same_preparation(&hit));
    runtime.prepare(&programs[2]);
    assert_eq!(runtime.prepared_cache_size(), 2);
    let again = runtime.prepare(&programs[0]);
    assert!(
        first.same_preparation(&again),
        "recently-used entry must survive eviction"
    );
    // And everything still runs correctly from whatever cache state.
    for (k, program) in programs.iter().enumerate() {
        let outcome = runtime.run(program, &[Value::Int(10)]).unwrap();
        assert_eq!(outcome.return_value, Some(Value::Int(10 + k as i64)));
    }
}

#[test]
fn prepared_cache_capacity_zero_never_caches_and_handles_stay_valid() {
    // The benchmark-control configuration: every raw submission re-prepares
    // (no cache entry is ever created), including under `run_many`, yet
    // results stay correct and explicitly prepared handles keep working.
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let oracle = oracle_for(&program, &[Value::Int(12)]);
    let runtime = Runtime::builder(EngineKind::Native)
        .workers(2)
        .prepared_cache_capacity(0)
        .build();
    let args: &[Value] = &[Value::Int(12)];
    let results = runtime.run_many(&[(&program, args), (&program, args), (&program, args)]);
    for (i, result) in results.iter().enumerate() {
        let outcome = result
            .as_ref()
            .unwrap_or_else(|e| panic!("uncached run_many job {i} failed: {e}"));
        assert_matches_oracle(&format!("uncached run_many job {i}"), outcome, &oracle);
    }
    assert_eq!(
        runtime.prepared_cache_size(),
        0,
        "capacity 0 must never retain a preparation"
    );
    // Explicit prepares bypass the cache but their handles are fully
    // functional — twice over, and they are never retained either.
    let handle = runtime.prepare(&program);
    assert_eq!(runtime.prepared_cache_size(), 0);
    for _ in 0..2 {
        let outcome = runtime.run(&handle, &[Value::Int(12)]).unwrap();
        assert_matches_oracle("uncached prepared handle", &outcome, &oracle);
    }
}

#[test]
fn capacity_one_cache_thrashes_correctly_and_evicted_handles_stay_valid() {
    // Capacity-1 eviction under `run_many` with alternating programs: the
    // single slot thrashes (re-prepare per alternation — the documented
    // cost of an undersized cache), every job still computes the right
    // result, the survivor is the most recently used program, and a handle
    // whose cache entry was evicted keeps running (no stale state).
    let a = pods::compile("def main(n) { return n + 1; }").unwrap();
    let b = pods::compile("def main(n) { return n * 2; }").unwrap();
    let runtime = Runtime::builder(EngineKind::Native)
        .workers(2)
        .prepared_cache_capacity(1)
        .build();
    let pa = runtime.prepare(&a);
    assert_eq!(runtime.prepared_cache_size(), 1);

    let args: &[Value] = &[Value::Int(10)];
    let results = runtime.run_many(&[(&a, args), (&b, args), (&a, args), (&b, args)]);
    let values: Vec<_> = results
        .into_iter()
        .map(|r| r.unwrap().return_value)
        .collect();
    assert_eq!(
        values,
        vec![
            Some(Value::Int(11)),
            Some(Value::Int(20)),
            Some(Value::Int(11)),
            Some(Value::Int(20)),
        ]
    );
    assert_eq!(
        runtime.prepared_cache_size(),
        1,
        "the cache never exceeds its capacity"
    );

    // Eviction order: B was submitted last, so B survived. Preparing B is
    // a cache hit (shared Arc); preparing A must rebuild.
    let pb1 = runtime.prepare(&b);
    let pb2 = runtime.prepare(&b);
    assert!(
        pb1.same_preparation(&pb2),
        "most recently used program must still be cached"
    );
    let pa2 = runtime.prepare(&a);
    assert!(
        !pa.same_preparation(&pa2),
        "A's cache entry was evicted, so preparing A again rebuilds"
    );
    // The evicted handle itself is untouched by eviction.
    assert_eq!(
        runtime.run(&pa, &[Value::Int(5)]).unwrap().return_value,
        Some(Value::Int(6))
    );
}

#[test]
fn huge_delivery_batches_never_strand_parked_instances() {
    // A batch size far larger than any workload's wake-up count means the
    // cap alone never forces a flush — only the task-boundary flushes keep
    // consumers alive. If a boundary were missed, these runs would deadlock
    // (the differential suite covers batch sizes 1 and 16; this covers
    // "effectively unbounded").
    for (name, source, n) in [
        ("stencil", pods_workloads::STENCIL, 16i64),
        ("recurrence", pods_workloads::RECURRENCE, 48),
        ("matmul", pods_workloads::MATMUL, 5),
    ] {
        let program = pods::compile(source).unwrap();
        let oracle = oracle_for(&program, &[Value::Int(n)]);
        let runtime = Runtime::builder(EngineKind::Native)
            .workers(4)
            .delivery_batch(1 << 20)
            .build();
        let outcome = runtime
            .run(&program, &[Value::Int(n)])
            .unwrap_or_else(|e| panic!("{name} with huge batch failed: {e}"));
        assert_matches_oracle(&format!("{name} with huge batch"), &outcome, &oracle);
    }
}

#[test]
fn dropping_a_batching_runtime_cancels_outstanding_jobs_cleanly() {
    // Same drop semantics as the unbatched runtime: a deep backlog is cut
    // short, every waiter resolves (completed or cancelled), nothing hangs
    // on an unflushed delivery buffer.
    let program = pods::compile(pods_workloads::STENCIL).unwrap();
    let runtime = Runtime::builder(EngineKind::Native)
        .workers(2)
        .delivery_batch(64)
        .build();
    let args = [Value::Int(24)];
    let prepared = runtime.prepare(&program);
    let handles: Vec<_> = (0..16)
        .map(|_| runtime.submit(&prepared, &args).unwrap())
        .collect();
    drop(runtime);
    for (i, handle) in handles.into_iter().enumerate() {
        // Must resolve promptly — completed jobs return results, the rest
        // report cancellation. Either way, no waiter is stranded.
        match handle.wait() {
            Ok(outcome) => assert!(
                outcome.returned_array().unwrap().is_complete(),
                "job {i} completed with holes"
            ),
            Err(e) => assert!(
                e.to_string().contains("cancelled"),
                "job {i}: unexpected error {e}"
            ),
        }
    }
}

#[test]
fn async_runtime_reuses_one_executor_and_matches_oracle() {
    // The cooperative engine behind the same Runtime surface: sequential
    // runs share one executor (pool identity + job sequencing), every
    // result matches the oracle, and the scheduler counters balance.
    let program = pods::compile(pods_workloads::RECURRENCE).unwrap();
    let oracle = oracle_for(&program, &[Value::Int(32)]);
    let runtime = Runtime::builder(EngineKind::AsyncCoop).workers(4).build();
    let first = runtime.run(&program, &[Value::Int(32)]).unwrap();
    let second = runtime.run(&program, &[Value::Int(32)]).unwrap();
    assert_matches_oracle("async run 1", &first, &oracle);
    assert_matches_oracle("async run 2", &second, &oracle);
    let (s1, s2) = (async_stats(&first), async_stats(&second));
    assert_eq!(s1.pool_id, runtime.pool_id().expect("async runtime pool"));
    assert_eq!(s1.pool_id, s2.pool_id, "executor was not reused");
    assert_eq!((s1.job_seq, s2.job_seq), (1, 2));
    // The recurrence chains element reads, so instances must actually have
    // suspended — and on a completed run every suspension was resumed.
    assert!(s1.suspensions > 0, "recurrence must suspend instances");
    assert_eq!(s1.suspensions, s1.resumptions);
    assert!(s1.polls >= s1.instances + s1.resumptions);
}

#[test]
fn huge_async_delivery_batches_never_strand_a_waker() {
    // Mirror of the native huge-batch no-strand test: a `delivery_batch`
    // far larger than any workload's outstanding waiter count means the
    // cap alone never forces a flush — only the task-boundary flushes keep
    // suspended tasks alive. A missed boundary would strand a waker in the
    // worker's buffer and deadlock these runs.
    for (name, source, n) in [
        ("stencil", pods_workloads::STENCIL, 16i64),
        ("recurrence", pods_workloads::RECURRENCE, 48),
        ("matmul", pods_workloads::MATMUL, 5),
    ] {
        let program = pods::compile(source).unwrap();
        let oracle = oracle_for(&program, &[Value::Int(n)]);
        let runtime = Runtime::builder(EngineKind::AsyncCoop)
            .workers(4)
            .delivery_batch(1 << 20)
            .build();
        let outcome = runtime
            .run(&program, &[Value::Int(n)])
            .unwrap_or_else(|e| panic!("async {name} with huge batch failed: {e}"));
        assert_matches_oracle(&format!("async {name} with huge batch"), &outcome, &oracle);
        let stats = async_stats(&outcome);
        assert_eq!(
            stats.suspensions, stats.resumptions,
            "async {name}: a waker was stranded"
        );
    }
}

#[test]
fn async_failures_are_job_scoped_and_deadlocks_are_detected() {
    // The async engine's exact deadlock detection plus job isolation: a
    // deadlocked job fails alone, the executor keeps serving, and the
    // deadlock error names the awaited slot.
    let deadlock = pods::compile("def main(n) { a = array(n); a[0] = 1; return a[1]; }").unwrap();
    let good = pods::compile(pods_workloads::FILL).unwrap();
    let oracle = oracle_for(&good, &[Value::Int(12)]);

    let runtime = Runtime::builder(EngineKind::AsyncCoop).workers(2).build();
    let bad_handle = runtime.submit(&deadlock, &[Value::Int(4)]).unwrap();
    let good_handle = runtime.submit(&good, &[Value::Int(12)]).unwrap();
    let err = bad_handle.wait().expect_err("deadlock must be reported");
    assert!(
        matches!(
            err,
            pods::PodsError::Simulation(pods::SimulationError::Deadlock { .. })
        ),
        "unexpected error: {err:?}"
    );
    assert!(
        err.to_string().contains("awaiting"),
        "deadlock must name the awaited slot: {err}"
    );
    let outcome = good_handle.wait().unwrap();
    assert_matches_oracle("good async job next to deadlocked job", &outcome, &oracle);

    for _ in 0..3 {
        assert!(runtime.run(&deadlock, &[Value::Int(4)]).is_err());
    }
    let after = runtime.run(&good, &[Value::Int(12)]).unwrap();
    assert_matches_oracle("async after repeated failures", &after, &oracle);
}

#[test]
fn dropping_an_async_runtime_cancels_outstanding_jobs() {
    // Drop-cancellation parity with the native pool: a deep backlog on the
    // cooperative executor is cut short, every waiter resolves (completed
    // or cancelled), nothing hangs on a suspended task or unflushed waker.
    let program = pods::compile(pods_workloads::STENCIL).unwrap();
    let runtime = Runtime::builder(EngineKind::AsyncCoop)
        .workers(2)
        .delivery_batch(64)
        .build();
    let args = [Value::Int(24)];
    let prepared = runtime.prepare(&program);
    let handles: Vec<_> = (0..16)
        .map(|_| runtime.submit(&prepared, &args).unwrap())
        .collect();
    drop(runtime);
    for (i, handle) in handles.into_iter().enumerate() {
        match handle.wait() {
            Ok(outcome) => assert!(
                outcome.returned_array().unwrap().is_complete(),
                "async job {i} completed with holes"
            ),
            Err(e) => assert!(
                e.to_string().contains("cancelled"),
                "async job {i}: unexpected error {e}"
            ),
        }
    }
}

#[test]
fn dropping_a_runtime_cancels_nothing_already_collected() {
    // Handles waited before the drop see their results; the drop itself
    // must not hang even with completed jobs behind it.
    let program = pods::compile("def main(n) { return n * 2; }").unwrap();
    let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
    let handle = runtime.submit(&program, &[Value::Int(21)]).unwrap();
    assert_eq!(handle.wait().unwrap().return_value, Some(Value::Int(42)));
    drop(runtime);
}

#[test]
fn dropping_a_runtime_cancels_outstanding_jobs_instead_of_hanging() {
    // Submit a deep backlog and drop the runtime immediately: the drop must
    // return promptly (not run the whole backlog), every handle must
    // resolve (no hung waiters), and the backlog must not have been
    // silently executed to completion — the tail gets cancellation errors.
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
    let args = [Value::Int(64)];
    let handles: Vec<_> = (0..20)
        .map(|_| runtime.submit(&program, &args).unwrap())
        .collect();
    drop(runtime);
    let results: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
    let cancelled = results.iter().filter(|r| r.is_err()).count();
    assert!(
        cancelled >= 1,
        "dropping with a 20-job backlog must cancel the tail, \
         but all jobs ran to completion"
    );
    for r in results.into_iter().flatten() {
        // Jobs that did complete before the teardown are intact.
        assert!(r.returned_array().unwrap().is_complete());
    }
}

#[test]
fn detached_handles_still_run_their_jobs_to_completion() {
    // Dropping a JobHandle without waiting must not cancel or leak the job:
    // it still executes, is counted in the metrics, and the pool keeps
    // serving afterwards.
    const JOBS: u64 = 8;
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
    let prepared = runtime.prepare(&program);
    for _ in 0..JOBS {
        let handle = runtime.submit(&prepared, &[Value::Int(24)]).unwrap();
        drop(handle); // detach: nobody will ever wait on this job
    }
    // Drain: completion is observable through the metrics alone.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let m = runtime.metrics();
        if m.completed + m.rejected + m.cancelled == m.submitted
            && m.queue_depth == 0
            && m.in_flight == 0
        {
            assert_eq!(m.submitted, JOBS);
            assert_eq!(m.completed, JOBS, "detached jobs must still complete");
            assert_eq!(m.rejected + m.cancelled, 0);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "detached jobs never drained: {m:?}"
        );
        std::thread::yield_now();
    }
    // The runtime is fully reusable after the detached burst.
    let outcome = runtime.run(&prepared, &[Value::Int(24)]).unwrap();
    assert!(outcome.returned_array().unwrap().is_complete());
    assert_eq!(runtime.metrics().completed, JOBS + 1);
}

#[test]
fn cancel_stops_a_queued_job_and_counts_it() {
    // A narrow dispatch window keeps the victim in the admission queue
    // behind a heavy blocker; cancelling it must resolve its waiter with a
    // cancellation error and count it as cancelled, never run it.
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let runtime = Runtime::builder(EngineKind::Native)
        .workers(2)
        .dispatch_window(1)
        .build();
    let prepared = runtime.prepare(&program);
    let blocker = runtime.submit(&prepared, &[Value::Int(2048)]).unwrap();
    let victim = runtime.submit(&prepared, &[Value::Int(2048)]).unwrap();
    victim.cancel();
    let err = victim.wait().expect_err("cancelled job must not succeed");
    assert!(
        err.to_string().contains("cancelled"),
        "unexpected error: {err}"
    );
    assert!(blocker.wait().is_ok(), "the blocker is unaffected");
    let m = runtime.metrics();
    assert_eq!(m.cancelled, 1);
    assert_eq!(m.completed, 1);
    assert_eq!(m.submitted, m.completed + m.rejected + m.cancelled);
}

#[test]
fn try_submit_rejects_at_capacity_with_queue_full() {
    // capacity 1 + window 1 + a heavy blocker: the first job dispatches,
    // the second fills the queue, the third is rejected immediately.
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let runtime = Runtime::builder(EngineKind::Native)
        .workers(2)
        .dispatch_window(1)
        .admission_capacity(1)
        .build();
    let prepared = runtime.prepare(&program);
    let blocker = runtime.submit(&prepared, &[Value::Int(2048)]).unwrap();
    let queued = runtime.submit(&prepared, &[Value::Int(16)]).unwrap();
    let err = runtime
        .try_submit(&prepared, &[Value::Int(16)])
        .expect_err("the queue is full");
    assert!(
        matches!(
            err,
            pods::PodsError::QueueFull {
                capacity: 1,
                depth: 1
            }
        ),
        "unexpected error: {err:?}"
    );
    // A bounded-wait submit times out against the same full queue.
    let err = runtime
        .submit_timeout(
            &prepared,
            &[Value::Int(16)],
            std::time::Duration::from_millis(10),
        )
        .expect_err("no slot frees within the timeout");
    assert!(matches!(err, pods::PodsError::QueueFull { .. }));
    assert!(blocker.wait().is_ok());
    assert!(queued.wait().is_ok());
    let m = runtime.metrics();
    assert_eq!(m.rejected, 2);
    assert_eq!(m.completed, 2);
    assert!(m.queue_depth_peak <= 1, "depth never exceeds capacity");
}

#[test]
fn store_stats_flow_from_jobs_into_engine_and_service_metrics() {
    // The I-structure store's live/peak counters surface per job (engine
    // stats) and as service-wide aggregates (Runtime::metrics).
    let program = pods::compile(pods_workloads::FILL).unwrap();
    let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
    let outcome = runtime.run(&program, &[Value::Int(32)]).unwrap();
    let stats = native_stats(&outcome);
    assert!(stats.store.peak_arrays >= 1, "fill allocates an array");
    assert!(stats.store.peak_bytes > 0);
    assert_eq!(stats.store.live_arrays, stats.store.peak_arrays);
    let m = runtime.metrics();
    assert!(m.peak_live_arrays >= 1);
    assert!(m.peak_array_bytes > 0);
    assert!(m.arrays_allocated >= 1);
    assert!(m.p50_latency_us > 0.0, "completed jobs record latency");

    // Async parity: the same counters flow from the cooperative executor.
    let async_rt = Runtime::builder(EngineKind::AsyncCoop).workers(2).build();
    let outcome = async_rt.run(&program, &[Value::Int(32)]).unwrap();
    let stats = async_stats(&outcome);
    assert!(stats.store.peak_arrays >= 1);
    assert!(async_rt.metrics().peak_live_arrays >= 1);
}
