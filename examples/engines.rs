//! The engine matrix: one program, four executors behind one trait.
//!
//! Runs the FILL workload through every registered engine and prints what
//! each engine measured — simulated time for the machine simulator and the
//! cost models, wall-clock time for the native thread pool — together with
//! a correctness digest so the agreement is visible.
//!
//! Run with: `cargo run --release --example engines [n] [pes]`

use pods::{RunOptions, Value, ENGINE_NAMES};

fn main() -> Result<(), pods::PodsError> {
    let args: Vec<String> = std::env::args().collect();
    let n: i64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
    let pes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    let program = pods::compile(pods_workloads::FILL)?;
    println!("FILL {n}x{n} on {pes} PEs/workers, all engines:");
    println!(
        "{:>8} | {:>16} | {:>14} | {:>10} | a[1,2]",
        "engine", "modelled (ms)", "wall (ms)", "written"
    );
    for name in ENGINE_NAMES {
        let outcome = program.run_on(name, &[Value::Int(n)], &RunOptions::with_pes(pes))?;
        let array = outcome.returned_array().expect("FILL returns its array");
        println!(
            "{:>8} | {:>16} | {:>14.3} | {:>10} | {:?}",
            outcome.engine,
            outcome
                .modelled_us
                .map(|us| format!("{:.3}", us / 1000.0))
                .unwrap_or_else(|| "-".into()),
            outcome.wall_us / 1000.0,
            array.written(),
            array.get(&[1, 2])
        );
    }
    println!();
    for name in ENGINE_NAMES {
        let engine = pods::engine_by_name(name).expect("registered");
        println!("{name:>8}: {}", engine.description());
    }
    Ok(())
}
