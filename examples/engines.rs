//! The engine matrix: one program, five executors behind one typed enum.
//!
//! Builds a [`pods::Runtime`] per [`pods::EngineKind`], runs the FILL
//! workload through each, and prints what each engine measured — simulated
//! time for the machine simulator and the cost models, wall-clock time for
//! the native thread pool and the cooperative async executor — together
//! with a correctness digest so the agreement is visible.
//!
//! Run with: `cargo run --release --example engines [n] [pes]`

use pods::{EngineKind, Runtime, Value};

fn main() -> Result<(), pods::PodsError> {
    let args: Vec<String> = std::env::args().collect();
    let n: i64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
    let pes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    let program = pods::compile(pods_workloads::FILL)?;
    println!("FILL {n}x{n} on {pes} PEs/workers, all engines:");
    println!(
        "{:>8} | {:>16} | {:>14} | {:>10} | a[1,2]",
        "engine", "modelled (ms)", "wall (ms)", "written"
    );
    for kind in EngineKind::ALL {
        let runtime = Runtime::builder(kind).workers(pes).build();
        let outcome = runtime.run(&program, &[Value::Int(n)])?;
        let array = outcome.returned_array().expect("FILL returns its array");
        println!(
            "{:>8} | {:>16} | {:>14.3} | {:>10} | {:?}",
            outcome.engine,
            outcome
                .modelled_us
                .map(|us| format!("{:.3}", us / 1000.0))
                .unwrap_or_else(|| "-".into()),
            outcome.wall_us / 1000.0,
            array.written(),
            array.get(&[1, 2])
        );
    }
    println!();
    for kind in EngineKind::ALL {
        println!("{:>8}: {}", kind.name(), kind.engine().description());
    }
    Ok(())
}
