//! Runs the SIMPLE hydrodynamics benchmark (the paper's evaluation workload)
//! on a sweep of machine sizes and prints the speed-up curve — a scaled-down
//! interactive version of Figure 10.
//!
//! The sweep goes through the engine layer, so the same command reports
//! simulated-PE speed-up (`sim`, the default), modelled static-compilation
//! speed-up (`pr`), or real hardware-thread speed-up (`native`).
//!
//! Run with: `cargo run --release --example simple_speedup [mesh] [max_pes] [engine]`

use pods::{report, EngineKind, RunOptions, Value};

fn main() -> Result<(), pods::PodsError> {
    let args: Vec<String> = std::env::args().collect();
    let mesh: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let max_pes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    // Typed engine selection: an unknown name errors loudly up front.
    let engine: EngineKind = args.get(3).map(String::as_str).unwrap_or("sim").parse()?;

    let program = pods::compile(pods_workloads::simple::SIMPLE)?;
    let mut pe_counts = vec![1usize];
    while *pe_counts.last().unwrap() < max_pes {
        pe_counts.push(pe_counts.last().unwrap() * 2);
    }

    println!("SIMPLE {mesh}x{mesh}: one Lagrangian time step (velocity/position, hydrodynamics, conduction)");
    let points = pods::speedup_sweep_on(
        engine.name(),
        &program,
        &[Value::Int(mesh as i64)],
        &pe_counts,
        &RunOptions::default(),
    )?;
    println!(
        "{}",
        report::speedup_table(&format!("speed-up versus PEs (engine: {engine})"), &points)
    );
    println!("paper reference at 32 PEs (sim): 8.1x (16x16), 12.4x (32x32), 18.9x (64x64)");
    Ok(())
}
