//! Quickstart: compile a small declarative program, run it through the full
//! PODS pipeline on a 4-PE simulated machine, and inspect the results —
//! then run the same compiled program repeatedly on a persistent native
//! [`Runtime`] whose worker pool is reused across runs, and once more on
//! the cooperative async executor to see its suspension/resumption
//! counters next to the native scheduler's.
//!
//! Run with: `cargo run --example quickstart`

use pods::{compile, ChunkPolicy, EngineKind, EngineStats, RunOptions, Runtime, Unit, Value};

fn main() -> Result<(), pods::PodsError> {
    // The running example of §3 of the paper, slightly enlarged: fill a
    // matrix by calling a function for every element.
    let source = r#"
        def main(n) {
            a = matrix(n, n);
            for i = 0 to n - 1 {
                for j = 0 to n - 1 {
                    a[i, j] = cell(i, j, n);
                }
            }
            return a;
        }
        def cell(i, j, n) {
            return sqrt((i * n + j) * 1.0);
        }
    "#;

    let program = compile(source)?;
    println!(
        "compiled: {} dataflow blocks, {} SP templates, {} loops analysed",
        program.graph().num_blocks(),
        program.sp_program().len(),
        program.loops().len()
    );

    let outcome = program.run(&[Value::Int(16)], &RunOptions::with_pes(4))?;
    let array = outcome.result.returned_array().expect("array result");
    println!(
        "ran on 4 PEs: {} of {} elements written, a[3,5] = {:?}",
        array.written(),
        array.values.len(),
        array.get(&[3, 5])
    );
    println!(
        "simulated time: {:.3} ms, EU utilization {:.1}%, {} messages",
        outcome.elapsed_us() / 1000.0,
        outcome.result.stats.utilization(Unit::Execution) * 100.0,
        outcome.result.stats.total_messages()
    );
    for loop_report in &outcome.partition.loops {
        println!("  loop {}: {:?}", loop_report.key, loop_report.decision);
    }

    // The same compiled program runs unchanged on real threads: a native
    // Runtime owns a persistent work-stealing pool, so back-to-back runs
    // (different problem sizes here) reuse the same worker threads. The
    // program is prepared once — the clone/partition/read-slot-table work
    // is paid here, and every run below is pure job submission.
    let runtime = Runtime::builder(EngineKind::Native).workers(4).build();
    let prepared = runtime.prepare(&program);
    println!("prepared: {prepared:?}");
    // Preparation also specialized the templates: straight-line runs are
    // now super-ops the warm path executes without re-interpreting, and
    // each engine's summary below counts how often they fired.
    let report = prepared.partition_report();
    println!(
        "specialized: {} of {} templates, {} super-ops, {} constants fused",
        report.specialized_templates,
        program.sp_program().len(),
        report.super_ops,
        report.fused_consts
    );
    for n in [8i64, 16, 24] {
        let native = runtime.run(&prepared, &[Value::Int(n)])?;
        let native_array = native.returned_array().expect("array result");
        let EngineStats::Native { stats, .. } = native.stats else {
            unreachable!("native runtime reports native stats");
        };
        println!(
            "native runtime (pool {} job {}): n={n}, {} of {} elements in {:.3} ms wall-clock",
            stats.pool_id,
            stats.job_seq,
            native_array.written(),
            native_array.values.len(),
            native.wall_us / 1000.0
        );
        println!("  {}", native.summary());
    }

    // With `PODS_TRACE=1` the runtime records every scheduling event into
    // per-worker ring buffers; export them as a Chrome/Perfetto trace.
    if runtime.tracing_enabled() {
        let trace = runtime.take_trace();
        let path = "trace.json";
        std::fs::write(path, trace.chrome_trace())
            .unwrap_or_else(|e| panic!("could not write {path}: {e}"));
        println!(
            "flight recorder: {} events ({} dropped) -> {path}",
            trace.events.len(),
            trace.dropped
        );
    }

    // Grain-size control: under `ChunkPolicy::Auto` the runtime picks a
    // chunk size from each template's body at prepare time (grouping that
    // many consecutive outer iterations into one SP instance), then
    // re-tunes the cached preparation from the first run's instance
    // counts — warm re-runs of the same program spawn fewer, coarser
    // instances. Visible on a fine-grained fill, where at grain 1 every
    // two-element row pays a full instance spawn.
    let fine = compile(
        "def main(n) {
             a = matrix(n, 2);
             for i = 0 to n - 1 { for j = 0 to 1 { a[i, j] = i * 3 + j; } }
             return a;
         }",
    )?;
    for (label, chunk) in [
        ("grain 1   ", ChunkPolicy::Fixed(1)),
        ("auto grain", ChunkPolicy::Auto),
    ] {
        let tuned = Runtime::builder(EngineKind::Native)
            .workers(4)
            .chunk_policy(chunk)
            .build();
        tuned.run(&fine, &[Value::Int(64)])?; // cold run; auto retunes the cache
        let outcome = tuned.run(&fine, &[Value::Int(64)])?;
        let EngineStats::Native { stats, .. } = outcome.stats else {
            unreachable!("native runtime reports native stats");
        };
        println!(
            "{label}: {} instances spawned, {:.1} iterations/instance, retuned {}x, {:.3} ms wall-clock",
            stats.instances_spawned(),
            stats.iterations_per_instance(),
            stats.chunks_autotuned,
            outcome.wall_us / 1000.0
        );
    }

    // The async cooperative engine runs the same prepared handle: instances
    // are futures-style state machines suspended/resumed by I-structure
    // wakers instead of a parked-instance registry. Its stats expose the
    // scheduler's work directly. (Select it in CLIs with PODS_ENGINE=async.)
    let coop = Runtime::builder(EngineKind::AsyncCoop).workers(4).build();
    let outcome = coop.run(&prepared, &[Value::Int(16)])?;
    let EngineStats::AsyncCoop { stats, .. } = outcome.stats else {
        unreachable!("async runtime reports async stats");
    };
    println!(
        "async runtime (pool {}): {} suspensions / {} resumptions, {:.3} ms wall-clock",
        stats.pool_id,
        stats.suspensions,
        stats.resumptions,
        outcome.wall_us / 1000.0
    );
    println!("  {}", outcome.summary());
    Ok(())
}
