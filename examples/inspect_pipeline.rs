//! Shows the intermediate artifacts of the PODS pipeline for the paper's
//! running example: the dataflow-graph statistics, the loop analysis, the
//! disassembled Subcompact Processes, and the partitioning decisions —
//! useful for understanding how a declarative program becomes distributed
//! iteration-level work.
//!
//! Run with: `cargo run --example inspect_pipeline`

use pods_partition::{partition, PartitionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = pods_workloads::PAPER_EXAMPLE;
    println!("--- source ---\n{source}");

    let hir = pods_idlang::compile(source)?;
    let graph = pods_dataflow::build_program(&hir);
    println!("--- dataflow graph ---");
    println!("{:?}", graph.stats());
    for block in graph.blocks() {
        println!(
            "  block {:?}: {} nodes ({})",
            block.id,
            block.len(),
            block.name
        );
    }

    let loops = pods_dataflow::analyze_loops(&hir);
    println!("--- loop analysis ---");
    for info in &loops {
        println!(
            "  {}: var={} depth={} lcd={} target={:?}",
            info.key,
            info.var,
            info.depth,
            info.has_lcd,
            info.distribution_target().map(|t| (&t.array, t.var_dim))
        );
    }

    let mut program = pods_sp::translate(&hir)?;
    let report = partition(&mut program, &loops, &PartitionConfig::default());
    println!("--- partitioning ---");
    for l in &report.loops {
        println!("  {}: {:?}", l.key, l.decision);
    }
    println!("--- subcompact processes ---");
    for template in program.templates() {
        println!("{}", template.disassemble());
    }

    // Graphviz output for the curious.
    let dot = pods_dataflow::to_dot(&graph);
    println!(
        "--- DOT graph ({} bytes, pipe into `dot -Tpng`) ---",
        dot.len()
    );

    // Hand the same source to the top-level pipeline and execute it on a
    // native Runtime, closing the loop from artifacts to real threads.
    let compiled = pods::compile(source)?;
    let runtime = pods::Runtime::builder(pods::EngineKind::Native)
        .workers(2)
        .build();
    let outcome = runtime.run(&compiled, &[])?;
    println!("--- native runtime ---");
    println!(
        "ran on {} pooled workers in {:.3} ms wall-clock, return = {:?}",
        runtime.workers(),
        outcome.wall_us / 1000.0,
        outcome.return_value
    );
    Ok(())
}
