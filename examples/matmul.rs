//! Dense matrix multiply expressed in the declarative language, validated
//! against the sequential oracle engine, and timed on every execution
//! engine at one and eight PEs/workers.
//!
//! Run with: `cargo run --release --example matmul [n]`

use pods::{EngineKind, Runtime, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);

    let program = pods::compile(pods_workloads::MATMUL)?;

    // Reference run: the sequential oracle engine.
    let reference = Runtime::new(EngineKind::Seq).run(&program, &[Value::Int(n)])?;
    let expected = reference.array("c").expect("c").to_f64(f64::NAN);

    for kind in [EngineKind::Sim, EngineKind::Native] {
        for pes in [1usize, 8] {
            let runtime = Runtime::builder(kind).workers(pes).build();
            let outcome = runtime.run(&program, &[Value::Int(n)])?;
            let c = outcome.array("c").expect("c");
            let got = c.to_f64(f64::NAN);
            let max_err = expected
                .iter()
                .zip(&got)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            let time = match outcome.modelled_us {
                Some(us) => format!("simulated {:.3} ms", us / 1000.0),
                None => format!("wall-clock {:.3} ms", outcome.wall_us / 1000.0),
            };
            println!(
                "{n}x{n} matmul, engine {kind} on {pes} PE(s): {time}, max |err| = {max_err:.3e}"
            );
            assert!(max_err < 1e-9, "results diverged from the reference");
        }
    }
    println!(
        "sequential baseline model: {:.3} ms",
        reference.modelled_us.unwrap_or_default() / 1000.0
    );
    Ok(())
}
