//! Dense matrix multiply expressed in the declarative language, validated
//! against the sequential baseline interpreter, and timed on one and eight
//! simulated PEs.
//!
//! Run with: `cargo run --release --example matmul [n]`

use pods::{RunOptions, Value};
use pods_baseline::run_sequential;
use pods_machine::TimingModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);

    let source = pods_workloads::MATMUL;
    let program = pods::compile(source)?;

    // Reference run: the sequential control-driven interpreter.
    let hir = pods_idlang::compile(source)?;
    let reference = run_sequential(&hir, &[Value::Int(n)], &TimingModel::default())?;
    let expected = reference.array("c").expect("c").to_f64(f64::NAN);

    for pes in [1usize, 8] {
        let outcome = program.run(&[Value::Int(n)], &RunOptions::with_pes(pes))?;
        let c = outcome.result.array("c").expect("c");
        let got = c.to_f64(f64::NAN);
        let max_err = expected
            .iter()
            .zip(&got)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!(
            "{n}x{n} matmul on {pes} PE(s): simulated {:.3} ms, max |PODS - reference| = {max_err:.3e}",
            outcome.elapsed_us() / 1000.0
        );
        assert!(max_err < 1e-9, "results diverged from the reference");
    }
    println!("sequential baseline model: {:.3} ms", reference.elapsed_us / 1000.0);
    Ok(())
}
